"""Simulated multi-provider query execution with runtime enforcement.

Each subject of the scenario becomes a :class:`SubjectNode` with its own
RSA keypair, its own stored tables (for data authorities), and — crucially
— only the query keys its envelope delivered.  The
:class:`DistributedRuntime` drives a dispatch plan the way §6 describes:
the user seals one envelope per fragment; each subject opens its envelope,
verifies the user's signature, pulls its input fragments from the subjects
below, and evaluates its own operators locally.

Two enforcement layers make violations fail loudly rather than silently:

* **model-level** — before producing a relation, a subject re-checks
  Definition 4.1 against the relation's profile;
* **value-level** — on receiving a table, a subject verifies it can
  legitimately see every column in the representation it arrives in
  (plaintext columns require plaintext authorization, encrypted columns
  at least encrypted authorization).

Together they turn the paper's theorems into executable assertions.

Scheduling
----------
The §6 dispatch hands every provider an *independent* sub-query, so the
runtime derives an explicit fragment dependency graph from
:meth:`~repro.core.dispatch.DispatchPlan.dependencies` and can execute
it on a worker pool: sibling fragments with no request path between them
run concurrently, while a per-subject lock serializes the fragments of
any one subject (a :class:`SubjectNode`'s executor state is never
touched by two threads at once).  The concurrent scheduler is **opt-in**
(``schedule="parallel"``); the default stays the seed's demand-driven
recursion — root first, one fragment at a time — as the bit-identical
reference path, so existing callers keep deterministic trace ordering
and no thread pool.  Both schedules produce the same result table
because each fragment's output depends only on its inputs.

The runtime is also built to be *long-lived*: per-subject executors (and
their memoized subtree results) persist across ``run`` calls keyed by the
delivered key material, and whole fragment results are reused when the
same fragment arrives again with identical inputs — the repeat-query
regime the service layer (:mod:`repro.service`) serves.  Policy churn is
absorbed by reconciling both caches against the policy's delta journal
(see :meth:`DistributedRuntime._reconcile_policy_caches_locked`): a
``grant``/``revoke`` only kills the entries whose subject and attribute
footprint it touches, never the whole cache, while revocations can never
be under-invalidated.

Failover contract
-----------------
Providers are treated as unreliable production services.  Every fragment
execution feeds a per-subject :class:`~repro.distributed.health.HealthRegistry`
(latency EWMA, consecutive errors, a closed/open/half-open circuit
breaker), and a seedable
:class:`~repro.distributed.faults.FaultInjector` can be wired in to make
chaos runs deterministic.  Failures are classified strictly:

* :class:`~repro.exceptions.TransientProviderError` is the **only**
  retryable failure.  It is retried on the same subject with bounded
  exponential backoff and deterministic jitter (:class:`RetryPolicy`),
  within the per-fragment deadline.  Envelope tampering/spoofing
  (:class:`~repro.exceptions.DispatchError`) and authorization
  violations (:class:`~repro.exceptions.UnauthorizedError`) are *never*
  retried — a forged message or a policy violation is not a fault that
  repeats its way to success.
* :class:`~repro.exceptions.ProviderDeadError` (or an exhausted retry
  budget, or an open breaker) escalates to **mid-query failover**: only
  the failed fragment is re-dispatched; every upstream fragment result
  already computed is kept and fed to the replacement.

Failover may never widen visibility.  A replacement subject S′ is
acceptable only if the repaired assignment — the extended plan's
assignment with the failed fragment's operations moved to S′ — passes
:func:`~repro.core.visibility.verify_assignment` (Definition 4.2 against
the extended plan's *actual* profiles), so S′ is authorized for every
operand and result it would now see, in the exact representation it
would see them.  The re-dispatch re-derives, for just that fragment: a
fresh envelope sealed for S′ containing the fragment text and the key
subset its encryption/decryption operations name, the replacement's
augmented view for the runtime enforcement checks, and a fragment-cache
key under the new subject.  When no authorized replacement exists the
runtime raises
:class:`~repro.exceptions.ProviderUnavailableError`; the service layer
(:mod:`repro.service`) then tries its warm standby plans (the other §6
portfolio assignments) and finally a full re-plan over the healthy
subject pool, raising
:class:`~repro.exceptions.UnrecoverableAssignmentError` only when no
authorized candidate remains.

Time is injectable (``clock``/``sleeper``): simulated provider latency,
backoff sleeps, deadlines, and breaker timeouts all go through the two
callables, so resilience tests run fast and deterministic.

Budgets and cancellation
------------------------
``run`` accepts a :class:`~repro.core.budget.CancellationToken` and
honors it cooperatively (the checkpoint contract lives in
:mod:`repro.core.budget`): the token is checked before envelopes are
sealed, at every fragment boundary on both schedules, at every retry
iteration, after each simulated-latency sleep, and at every failover
candidate; it is additionally scoped to the evaluating thread
(``token_scope``) so chunked parallel maps deep inside the executor
observe it between chunks.  Simulated-latency and backoff sleeps are
clamped to the *remaining* query budget (and to the per-fragment
deadline), so a sleep can never overshoot either.  An abort unwinds as
:class:`~repro.exceptions.DeadlineExceededError` /
:class:`~repro.exceptions.QueryCancelledError` with the partial
:class:`ExecutionTrace` attached; because every cache insert along the
way is a complete-entry insert behind the same generation/version
fences that guard policy churn, an aborted run leaves no
partially-populated executor or fragment-cache entry behind.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.core.authorization import Policy, Subject, SubjectView
from repro.core.budget import CancellationToken, token_scope
from repro.core.dispatch import DispatchPlan, SubQuery
from repro.core.extension import ExtendedPlan
from repro.core.keys import KeyAssignment
from repro.core.lineage import Lineage, augment_view, derived_lineage
from repro.core.operators import BaseRelationNode, PlanNode
from repro.core.visibility import check_relation, verify_assignment
from repro.crypto.keymanager import DistributedKeys, KeyStore
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey, generate_keypair
from repro.distributed.faults import FaultInjector
from repro.distributed.health import HealthRegistry, RetryPolicy
from repro.distributed.messages import (
    SubQueryPayload,
    keystore_signature,
    open_envelope,
    seal_envelope,
)
from repro.engine.executor import Executor, UdfCallable
from repro.engine.table import Table
from repro.parallel.pool import ExecutionSettings
from repro.engine.values import EncryptedAggregate, EncryptedValue
from repro.exceptions import (
    DispatchError,
    ProviderDeadError,
    ProviderUnavailableError,
    QueryAbortedError,
    TransientProviderError,
    UnauthorizedError,
)

#: Upper bound on persistent executors kept across runs (LRU beyond it).
_EXECUTOR_POOL_LIMIT = 64

#: Upper bound on memoized whole-fragment results (LRU beyond it).
_FRAGMENT_CACHE_LIMIT = 256


@dataclass
class SubjectNode:
    """One participant: identity, RSA keys, stored data, local state.

    ``latency_seconds`` simulates the per-fragment round-trip/processing
    delay of a real remote provider; the scheduler overlaps these delays
    across independent fragments (and the sequential reference path pays
    their sum), which is what the workload benchmark measures.
    """

    subject: Subject
    rsa_public: RsaPublicKey
    rsa_private: RsaPrivateKey
    tables: dict[str, Table] = field(default_factory=dict)
    udfs: dict[str, UdfCallable] = field(default_factory=dict)
    latency_seconds: float = 0.0

    @classmethod
    def create(cls, subject: Subject,
               tables: Mapping[str, Table] | None = None,
               udfs: Mapping[str, UdfCallable] | None = None,
               rsa_bits: int = 1024,
               rsa_keys: tuple[RsaPublicKey, RsaPrivateKey] | None = None,
               latency_seconds: float = 0.0) -> "SubjectNode":
        """Create a node, generating an RSA keypair unless one is given.

        ``rsa_keys`` lets long-lived deployments (the service layer,
        repeated-query benchmarks) generate each subject's keypair once
        and reuse it instead of paying keygen per construction.
        """
        if rsa_keys is None:
            rsa_keys = generate_keypair(rsa_bits)
        public, private = rsa_keys
        return cls(
            subject=subject,
            rsa_public=public,
            rsa_private=private,
            tables=dict(tables or {}),
            udfs=dict(udfs or {}),
            latency_seconds=latency_seconds,
        )

    @property
    def name(self) -> str:
        return self.subject.name


@dataclass
class FailoverEvent:
    """One mid-query fragment re-dispatch, for tracing and audit.

    ``repaired_assignment`` is the full extended-plan assignment after
    the takeover (the mapping :func:`verify_assignment` approved), so
    auditors can re-verify independently that the re-dispatch never
    widened visibility.
    """

    fragment_id: str
    failed_subject: str
    replacement: str
    attempts: int
    seconds: float
    repaired_assignment: dict[PlanNode, str] = field(default_factory=dict)
    verified: bool = True


@dataclass
class ExecutionTrace:
    """Observability: what moved where during a distributed run."""

    messages: int = 0
    envelope_bytes: int = 0
    rows_transferred: int = 0
    fragments_run: list[tuple[str, str]] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)
    schedule: str = "sequential"
    fragment_cache_hits: int = 0
    #: Fragment execution attempts (first tries + retries; cache hits
    #: excluded — they never touch a provider).
    attempts: int = 0
    #: Transient-fault retries on the same subject.
    retries: int = 0
    #: Circuit-breaker trips (including permanent provider deaths).
    breaker_trips: int = 0
    #: Mid-query fragment re-dispatches, in completion order.
    failovers: list[FailoverEvent] = field(default_factory=list)


class _FragmentFailed(Exception):
    """Internal control flow: a fragment exhausted its subject.

    Raised out of :meth:`DistributedRuntime._evaluate_fragment` *while
    the subject lock is held*; the schedulers catch it after releasing
    the lock and run failover lock-free (the replacement takes its own
    subject lock), so two concurrent failovers can never deadlock on
    each other's subject locks.  Never escapes ``run``.
    """

    def __init__(self, subject: str, attempts: int,
                 cause: Exception | None = None) -> None:
        super().__init__(f"fragment failed at {subject}")
        self.subject = subject
        self.attempts = attempts
        self.cause = cause


@dataclass
class _RunContext:
    """Per-``run`` state, so concurrent runs never share mutable state."""

    dispatch_plan: DispatchPlan
    envelopes: dict[str, bytes]
    profiles: Mapping[PlanNode, object]
    lineage: Lineage
    constant_store: KeyStore | None
    constant_store_signature: str
    trace: ExecutionTrace
    user: str
    user_node: SubjectNode
    #: The extended plan under execution; failover repairs (and
    #: re-verifies) its assignment when a fragment loses its provider.
    extended: ExtendedPlan | None = None
    #: The query's cancellation token (None = unbudgeted, no checks).
    token: CancellationToken | None = None
    trace_lock: threading.Lock = field(default_factory=threading.Lock)


class DistributedRuntime:
    """Executes dispatch plans across simulated subjects.

    Parameters
    ----------
    schedule:
        ``"sequential"`` (default) is the demand-driven recursive
        reference path; ``"parallel"`` opts into running independent
        fragments concurrently on a worker pool.  Both return identical
        results; only trace ordering (and wall time) differs.
    max_workers:
        Worker-pool width for the parallel schedule (default: one per
        fragment, capped at 32).
    executor_cache_size / executor_cache_bytes:
        Passed through to each persistent per-subject
        :class:`~repro.engine.executor.Executor` (see its ``cache_size``
        and ``cache_bytes``).
    clock / sleeper:
        Injectable time sources (defaults: :func:`time.monotonic` and
        :func:`time.sleep`).  Simulated provider latency, retry backoff,
        fragment deadlines, and breaker timeouts all go through these,
        so tests can drive them with a fake clock instead of sleeping.
    health:
        A shared :class:`~repro.distributed.health.HealthRegistry`; one
        is created (on ``clock``) when not given.
    fault_injector:
        Optional :class:`~repro.distributed.faults.FaultInjector`
        consulted before every fragment execution.
    retry:
        The :class:`~repro.distributed.health.RetryPolicy` for transient
        faults (attempts, backoff, per-fragment deadline).
    failover:
        When True (default), a fragment whose subject is lost is
        re-dispatched in place to the next authorized candidate (see the
        module docstring's failover contract); when False the failure
        surfaces immediately as
        :class:`~repro.exceptions.ProviderUnavailableError`.
    settings:
        The data-plane :class:`~repro.parallel.pool.ExecutionSettings`
        (worker count, join strategy, parallelism threshold).  Every
        subject's executor is built over the same shared
        :class:`~repro.parallel.pool.WorkerPool`, so per-subject
        fragments and intra-fragment column chunks draw from one bounded
        set of processes instead of multiplying pools.  Defaults to
        inline single-core execution (``workers=0``).
    """

    def __init__(self, policy: Policy, nodes: Mapping[str, SubjectNode],
                 user: str, enforce: bool = True,
                 schedule: str = "sequential",
                 max_workers: int | None = None,
                 executor_cache_size: int = 128,
                 executor_cache_bytes: int | None = None,
                 clock=None, sleeper=None,
                 health: HealthRegistry | None = None,
                 fault_injector: FaultInjector | None = None,
                 retry: RetryPolicy | None = None,
                 failover: bool = True,
                 settings: ExecutionSettings | None = None) -> None:
        self.policy = policy
        self.settings = settings or ExecutionSettings()
        self.nodes = dict(nodes)
        self.user = user
        self.enforce = enforce
        self.schedule = _check_schedule(schedule)
        self.max_workers = max_workers
        self.executor_cache_size = executor_cache_size
        self.executor_cache_bytes = executor_cache_bytes
        self._clock = clock or time.monotonic
        self._sleep = sleeper or time.sleep
        self.health = health or HealthRegistry(clock=self._clock)
        self.fault_injector = fault_injector
        self.retry_policy = retry or RetryPolicy()
        self.failover_enabled = failover
        #: Optional observability sink (see :meth:`attach_metrics`).
        self._metrics_sink = None
        if user not in self.nodes:
            raise DispatchError(f"no runtime node for user {user!r}")
        self._subject_locks: dict[str, threading.Lock] = {}
        self._locks_guard = threading.Lock()
        self._executors: OrderedDict[tuple, Executor] = OrderedDict()
        self._fragment_cache: OrderedDict[
            tuple, tuple[Table, PlanNode, tuple[Table, ...], frozenset[str]]
        ] = OrderedDict()
        self._caches_guard = threading.Lock()
        # Bumped by invalidate_caches(); inserts check it so an entry
        # computed from a pre-invalidation catalog snapshot can never
        # repopulate the caches after the clear.
        self._cache_generation = 0
        # Policy version both caches were last reconciled to.  On every
        # bump the caches walk the delta journal: entries whose subject
        # and attribute footprint are disjoint from all intervening
        # deltas are rebased onto the new version; touched entries die
        # (revocations may never be under-invalidated); a truncated
        # journal flushes everything.
        self._reconciled_version = policy.version
        self._reconcile_stats = {
            "fragment_kept": 0,
            "fragment_evicted": 0,
            "fragment_flushed": 0,
            "executor_kept": 0,
            "executor_evicted": 0,
            "executor_flushed": 0,
        }

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self, dispatch_plan: DispatchPlan, extended: ExtendedPlan,
            keys: KeyAssignment, distributed_keys: DistributedKeys,
            *, user: str | None = None, schedule: str | None = None,
            max_workers: int | None = None,
            token: CancellationToken | None = None,
            ) -> tuple[Table, ExecutionTrace]:
        """Seal envelopes, execute every fragment, return the result.

        The user signs each fragment's payload and encrypts it for the
        fragment's subject; fragments then execute according to the
        chosen schedule — demand-driven root-down recursion
        (``"sequential"``, exactly the nested ``req`` calls of Figure 8)
        or dependency-graph order on a worker pool (``"parallel"``).

        ``token`` makes the run budget-aware: it is checked at every
        cooperative checkpoint (see the module docstring), and an abort
        raises :class:`~repro.exceptions.DeadlineExceededError` /
        :class:`~repro.exceptions.QueryCancelledError` with the partial
        trace attached.

        The returned table is the caller's own copy: fragment results
        are memoized and shared across runs internally, so the delivered
        table is detached from the caches before it is handed out.
        """
        schedule = _check_schedule(schedule or self.schedule)
        user = user or self.user
        user_node = self._node_for(user)
        trace = ExecutionTrace(schedule=schedule)
        context = _RunContext(
            dispatch_plan=dispatch_plan,
            envelopes={},
            profiles=extended.plan.profiles(),
            lineage=derived_lineage(extended.plan),
            constant_store=distributed_keys.master,
            constant_store_signature=keystore_signature(
                distributed_keys.master),
            trace=trace,
            user=user,
            user_node=user_node,
            extended=extended,
            token=token,
        )

        try:
            self._checkpoint(context, "runtime:dispatch")
            for fragment in dispatch_plan.fragments.values():
                subject_node = self._node_for(fragment.subject)
                payload = SubQueryPayload(
                    fragment_id=fragment.fragment_id,
                    query_text=fragment.text,
                    keystore=distributed_keys.store_for(fragment.subject),
                )
                blob = seal_envelope(
                    payload, user_node.rsa_private, subject_node.rsa_public
                )
                context.envelopes[fragment.fragment_id] = blob
                trace.messages += 1
                trace.envelope_bytes += len(blob)

            if schedule == "sequential":
                result = self._run_sequential(
                    context, dispatch_plan.root_fragment_id)
            else:
                result = self._run_parallel(context, max_workers)
        except QueryAbortedError as abort:
            # Hand the caller whatever ran before the abort: the partial
            # trace is the audit record of the fragments already paid for.
            if abort.trace is None:
                abort.trace = trace
            raise

        # Final delivery to the user: the user must be entitled to the
        # root relation, and to every column representation it contains.
        if self.enforce:
            root_view = augment_view(self.policy.view(user),
                                     context.lineage)
            self._check_profile(
                root_view, context.profiles[extended.plan.root],
                "query result", trace,
            )
            self._check_values(root_view, result, trace)
        trace.rows_transferred += len(result)
        # The result may live in (and be served again from) the fragment
        # cache; Table.rows is a public mutable list, so hand the caller
        # a private copy rather than the cached object itself.
        return result.copy(), trace

    def invalidate_caches(self) -> None:
        """Drop persistent executors and memoized fragment results.

        Call after changing a :class:`SubjectNode`'s ``tables`` or
        ``udfs`` in place: executors snapshot the catalog they were
        created with, so data changes are otherwise invisible to them.
        A run in flight during the call cannot re-insert entries built
        from the old catalog: inserts are fenced on a generation counter
        this method bumps.
        """
        with self._caches_guard:
            self._executors.clear()
            self._fragment_cache.clear()
            self._cache_generation += 1

    def cache_info(self) -> dict[str, int]:
        """Aggregate executor/fragment cache counters across subjects."""
        with self._caches_guard:
            executors = list(self._executors.values())
            fragment_entries = len(self._fragment_cache)
            reconcile = dict(self._reconcile_stats)
        hits = sum(e.cache_hits for e in executors)
        misses = sum(e.cache_misses for e in executors)
        info = {
            "executors": len(executors),
            "executor_hits": hits,
            "executor_misses": misses,
            "fragment_entries": fragment_entries,
        }
        info.update(reconcile)
        return info

    def health_info(self) -> dict[str, dict[str, object]]:
        """Per-subject health snapshot (breaker state, EWMA, counters)."""
        return self.health.snapshot()

    def attach_metrics(self, sink) -> None:
        """Attach an observability sink for per-fragment latencies.

        ``sink.observe_fragment(subject, seconds)`` is called once per
        successful fragment execution with the measured wall time (the
        same measurement that feeds the health registry's EWMA).  The
        sink must be thread-safe — fragments complete on many worker
        threads — and cheap: it runs on the fragment's critical path.
        Pass ``None`` to detach.
        """
        self._metrics_sink = sink

    # ------------------------------------------------------------------
    # Policy-delta reconcile
    # ------------------------------------------------------------------
    def _reconcile_policy_caches_locked(self) -> None:
        """Walk the delta journal and surgically maintain both caches.

        Caller holds ``_caches_guard``.  Fragment entries carry a
        per-entry attribute footprint (every name in the fragment
        subtree's profiles, plus lineage sources), so a delta kills an
        entry only when it touches the entry's subject *and* intersects
        that footprint; executors are subject-granular (their memos span
        many fragments, so no finer footprint is sound to keep cheap).
        Surviving keys are rebased onto the current version.  A journal
        that no longer reaches back flushes everything — the same
        conservative fallback as the version-keyed purge this replaces,
        preserving the invariant that no stale enforcement-skipping
        result can ever be served.
        """
        current = self.policy.version
        if self._reconciled_version == current:
            return
        deltas = self.policy.deltas_since(self._reconciled_version)
        self._reconciled_version = current
        stats = self._reconcile_stats
        if deltas is None:
            stats["fragment_flushed"] += len(self._fragment_cache)
            stats["executor_flushed"] += len(self._executors)
            self._fragment_cache.clear()
            self._executors.clear()
            return
        fragments: OrderedDict[
            tuple, tuple[Table, PlanNode, tuple[Table, ...], frozenset[str]]
        ] = OrderedDict()
        for key, entry in self._fragment_cache.items():
            subject = {key[1]}
            footprint = entry[3]
            if any(d.touches(subject, footprint) for d in deltas):
                stats["fragment_evicted"] += 1
                continue
            fragments[key[:3] + (current,) + key[4:]] = entry
            stats["fragment_kept"] += 1
        self._fragment_cache = fragments
        executors: OrderedDict[tuple, Executor] = OrderedDict()
        for key, executor in self._executors.items():
            if any(d.touches({key[0]}) for d in deltas):
                stats["executor_evicted"] += 1
                continue
            executors[key[:3] + (current,)] = executor
            stats["executor_kept"] += 1
        self._executors = executors

    @staticmethod
    def _fragment_footprint(root: PlanNode,
                            context: _RunContext) -> frozenset[str]:
        """Attribute names a fragment's enforcement checks can read.

        The union of every profile component over the fragment subtree
        (boundary input nodes included), closed under lineage: a derived
        alias's visibility follows its source attribute, so the source
        belongs in the footprint even when it never appears in this
        fragment's own profiles.
        """
        attrs: set[str] = set()
        seen: set[int] = set()
        stack = [root]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            profile = context.profiles.get(node)
            if profile is not None:
                attrs |= profile.visible_plaintext
                attrs |= profile.visible_encrypted
                attrs |= profile.implicit_plaintext
                attrs |= profile.implicit_encrypted
                for eq_class in profile.equivalences:
                    attrs |= eq_class
            stack.extend(node.children)
        for name in list(attrs):
            source = context.lineage.get(name)
            if source is not None:
                attrs.add(source)
        return frozenset(attrs)

    # ------------------------------------------------------------------
    # Schedules
    # ------------------------------------------------------------------
    @staticmethod
    def _checkpoint(context: _RunContext, where: str) -> None:
        """Cooperative cancellation checkpoint (no-op without a token)."""
        if context.token is not None:
            context.token.check(where)

    def _run_sequential(self, context: _RunContext,
                        fragment_id: str) -> Table:
        """Demand-driven recursion: the seed's bit-identical reference."""
        self._checkpoint(context, f"runtime:fragment {fragment_id}")
        fragment = context.dispatch_plan.fragment(fragment_id)
        node = self._node_for(fragment.subject)
        payload = self._open_and_record(context, fragment, node)
        view = augment_view(self.policy.view(fragment.subject),
                            context.lineage)
        inputs: dict[int, Table] = {}
        for boundary_id, child_fragment_id in fragment.requests.items():
            table = self._run_sequential(context, child_fragment_id)
            self._receive_input(context, fragment, view, table)
            inputs[boundary_id] = table
        # The subject lock guards the persistent executor state against
        # other runs; it is taken around the evaluation only (never while
        # recursing into children) so same-subject nesting cannot
        # deadlock.
        try:
            with self._lock_for(fragment.subject):
                return self._evaluate_fragment(context, fragment, node,
                                               payload, view, inputs)
        except _FragmentFailed as failure:
            return self._failover_fragment(context, fragment, inputs,
                                           failure)

    def _run_parallel(self, context: _RunContext,
                      max_workers: int | None) -> Table:
        """Dependency-graph scheduling on a worker pool.

        A fragment becomes ready once all fragments it requests have
        produced their tables; ready fragments are submitted immediately,
        and the per-subject locks inside the fragment task keep any one
        subject's execution serialized.
        """
        dispatch_plan = context.dispatch_plan
        dependencies = dispatch_plan.dependencies()
        dependents = dispatch_plan.dependents()
        dispatch_plan.execution_levels()  # validates graph shape upfront
        remaining = {f: len(deps) for f, deps in dependencies.items()}
        results: dict[str, Table] = {}
        workers = max_workers or self.max_workers \
            or min(32, max(1, len(dispatch_plan.fragments)))

        def task(fragment_id: str) -> Table:
            self._checkpoint(context, f"runtime:fragment {fragment_id}")
            fragment = dispatch_plan.fragment(fragment_id)
            node = self._node_for(fragment.subject)
            inputs: dict[int, Table] = {}
            try:
                with self._lock_for(fragment.subject):
                    payload = self._open_and_record(context, fragment, node)
                    view = augment_view(self.policy.view(fragment.subject),
                                        context.lineage)
                    for boundary_id, child_id in fragment.requests.items():
                        table = results[child_id]
                        self._receive_input(context, fragment, view, table)
                        inputs[boundary_id] = table
                    return self._evaluate_fragment(context, fragment, node,
                                                   payload, view, inputs)
            except _FragmentFailed as failure:
                return self._failover_fragment(context, fragment, inputs,
                                               failure)

        pool = ThreadPoolExecutor(max_workers=workers)
        try:
            pending = {}
            for fragment_id, count in remaining.items():
                if count == 0:
                    pending[pool.submit(task, fragment_id)] = fragment_id
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    fragment_id = pending.pop(future)
                    results[fragment_id] = future.result()  # may raise
                    for parent_id in dependents[fragment_id]:
                        remaining[parent_id] -= 1
                        if remaining[parent_id] == 0:
                            pending[pool.submit(task, parent_id)] = \
                                parent_id
        finally:
            pool.shutdown(wait=True, cancel_futures=True)
        return results[dispatch_plan.root_fragment_id]

    # ------------------------------------------------------------------
    # Fragment execution
    # ------------------------------------------------------------------
    def _open_and_record(self, context: _RunContext, fragment: SubQuery,
                         node: SubjectNode) -> SubQueryPayload:
        payload = open_envelope(
            context.envelopes[fragment.fragment_id], node.rsa_private,
            context.user_node.rsa_public,
        )
        with context.trace_lock:
            context.trace.fragments_run.append(
                (fragment.fragment_id, fragment.subject))
        return payload

    def _receive_input(self, context: _RunContext, fragment: SubQuery,
                       view: SubjectView, table: Table) -> None:
        with context.trace_lock:
            context.trace.messages += 1
            context.trace.rows_transferred += len(table)
        if self.enforce and not fragment.subject.startswith("authority:"):
            self._check_values(view, table, context.trace,
                               context.trace_lock)

    def _evaluate_fragment(self, context: _RunContext, fragment: SubQuery,
                           node: SubjectNode, payload: SubQueryPayload,
                           view: SubjectView,
                           inputs: dict[int, Table]) -> Table:
        """Evaluate one fragment, reusing a memoized whole-fragment result.

        The memo key ties the result to everything it can depend on: the
        fragment's root node (identity — stable across repeated queries
        served from the assignment cache), the executing subject, the
        delivered key material, the policy version, the enforcement
        flag, and the identity of every input table (a recomputed input
        produces a fresh object and therefore a miss).  Before the
        lookup, the caches reconcile against the policy's delta journal:
        entries whose subject/footprint are disjoint from every
        intervening ``grant``/``revoke`` are rebased to the current
        version and keep hitting; touched entries die and re-run their
        enforcement checks.
        """
        signature = keystore_signature(payload.keystore)
        cache_key = (
            id(fragment.root), fragment.subject, signature,
            self.policy.version, self.enforce,
            tuple(sorted((b, id(t)) for b, t in inputs.items())),
        )
        with self._caches_guard:
            self._reconcile_policy_caches_locked()
            generation = self._cache_generation
            cached = self._fragment_cache.get(cache_key)
            if cached is not None:
                self._fragment_cache.move_to_end(cache_key)
        if cached is not None:
            with context.trace_lock:
                context.trace.fragment_cache_hits += 1
            return cached[0]
        result = self._execute_with_retries(context, fragment, node,
                                            payload, view, inputs,
                                            signature, generation)
        footprint = self._fragment_footprint(fragment.root, context)
        with self._caches_guard:
            # The key holds id()s of the root node and the input tables;
            # the entry pins those objects so the ids cannot be recycled
            # into different objects while the entry exists.  Skip the
            # insert if invalidate_caches() ran meanwhile — this result
            # may have been computed from the pre-invalidation catalog.
            # The same goes for a result keyed on an already-superseded
            # policy version (a grant/revoke landed mid-run): its
            # enforcement checks ran against the old policy.
            self._reconcile_policy_caches_locked()
            if self._cache_generation == generation \
                    and cache_key[3] == self.policy.version:
                self._fragment_cache[cache_key] = (
                    result, fragment.root, tuple(inputs.values()),
                    footprint,
                )
                self._fragment_cache.move_to_end(cache_key)
                while len(self._fragment_cache) > _FRAGMENT_CACHE_LIMIT:
                    self._fragment_cache.popitem(last=False)
        return result

    def _execute_with_retries(self, context: _RunContext,
                              fragment: SubQuery, node: SubjectNode,
                              payload: SubQueryPayload, view: SubjectView,
                              inputs: dict[int, Table], signature: str,
                              generation: int) -> Table:
        """Run one fragment on its subject, absorbing transient faults.

        Only :class:`TransientProviderError` is retried (bounded
        attempts, exponential backoff with deterministic jitter, within
        the per-fragment deadline *and* the remaining query budget).  A
        dead provider, an open breaker, or an exhausted budget raises
        :class:`_FragmentFailed` so the scheduler can fail the fragment
        over after releasing the subject lock.  Any other exception
        (tampering, authorization violations, executor bugs) propagates
        untouched — retrying a forged envelope or a policy violation
        must never happen.  A budget abort
        (:class:`~repro.exceptions.QueryAbortedError` raised by a
        checkpoint) also takes that path: it says nothing about the
        provider's health, so the probe slot is released and the abort
        unwinds unretried.
        """
        subject = fragment.subject
        retry = self.retry_policy
        token = context.token
        deadline = None
        if retry.fragment_deadline_seconds is not None:
            deadline = self._clock() + retry.fragment_deadline_seconds
        attempts = 0
        while True:
            self._checkpoint(
                context,
                f"runtime:fragment {fragment.fragment_id} "
                f"attempt {attempts + 1}")
            if not self.health.admit(subject):
                raise _FragmentFailed(
                    subject, attempts,
                    cause=ProviderDeadError(
                        f"provider {subject} is out of rotation "
                        f"(breaker {self.health.state(subject)})",
                        subject=subject))
            attempts += 1
            with context.trace_lock:
                context.trace.attempts += 1
            started = self._clock()
            try:
                extra = 0.0
                if self.fault_injector is not None:
                    extra = self.fault_injector.on_execute(subject)
                delay = node.latency_seconds + extra
                if delay:
                    # Clamp the simulated provider round-trip to the
                    # remaining budget: past the deadline the response
                    # is worthless, so the checkpoint below aborts
                    # without waiting out the rest of the latency.
                    if token is not None:
                        delay = token.clamp(delay)
                    if delay:
                        self._sleep(delay)
                    self._checkpoint(
                        context,
                        f"runtime:fragment {fragment.fragment_id} "
                        f"response")
                executor = self._executor_for(node, subject, payload,
                                              signature, context,
                                              generation)
                impure = _input_dependent_ids(fragment.root, inputs)
                with token_scope(token):
                    result = self._evaluate(context, fragment,
                                            fragment.root, executor,
                                            inputs, view, impure)
            except TransientProviderError as fault:
                if self.health.record_failure(subject):
                    with context.trace_lock:
                        context.trace.breaker_trips += 1
                out_of_time = (deadline is not None
                               and self._clock() >= deadline)
                if (attempts >= retry.max_attempts or out_of_time
                        or not self.health.available(subject)):
                    raise _FragmentFailed(subject, attempts, cause=fault)
                with context.trace_lock:
                    context.trace.retries += 1
                # The backoff sleep draws from whatever budget is
                # tighter — the per-fragment deadline or the remaining
                # end-to-end query budget — and can overshoot neither.
                remaining = None
                if deadline is not None:
                    remaining = max(0.0, deadline - self._clock())
                if token is not None:
                    budget_left = token.remaining_seconds()
                    if budget_left is not None:
                        remaining = budget_left if remaining is None \
                            else min(remaining, budget_left)
                self._sleep(retry.backoff(
                    attempts, salt=f"{fragment.fragment_id}:{subject}",
                    remaining_seconds=remaining))
                if deadline is not None and self._clock() >= deadline:
                    # The (clamped) sleep consumed the fragment's whole
                    # deadline; another attempt could not finish in time.
                    raise _FragmentFailed(subject, attempts, cause=fault)
                continue
            except ProviderDeadError as fault:
                if self.health.mark_dead(subject):
                    with context.trace_lock:
                        context.trace.breaker_trips += 1
                raise _FragmentFailed(subject, attempts, cause=fault)
            except Exception:
                # No health verdict: the failure says nothing about the
                # provider (e.g. an authorization violation raised by
                # our own enforcement).  Just release any probe slot.
                self.health.release_probe(subject)
                raise
            elapsed = self._clock() - started
            self.health.record_success(subject, elapsed)
            sink = self._metrics_sink
            if sink is not None:
                sink.observe_fragment(subject, elapsed)
            return result

    # ------------------------------------------------------------------
    # Mid-query failover
    # ------------------------------------------------------------------
    def _failover_fragment(self, context: _RunContext, fragment: SubQuery,
                           inputs: dict[int, Table],
                           failure: _FragmentFailed) -> Table:
        """Re-dispatch a failed fragment to the next authorized candidate.

        Walks healthy candidate subjects (cheapest latency EWMA first)
        and, for each: repairs the extended plan's assignment by moving
        the fragment's operations to the candidate, gates the repair
        with :func:`verify_assignment` (Definition 4.2 on the extended
        plan's actual profiles — failover may never widen visibility),
        reseals the fragment envelope for the candidate with exactly the
        key subset the fragment's operations name, and re-executes just
        this fragment with the already-computed input tables.  The
        caller must *not* hold the failed subject's lock.
        """
        if not self.failover_enabled or context.extended is None:
            raise self._unavailable(context, fragment, failure,
                                    {failure.subject})
        started = self._clock()
        extended = context.extended
        excluded = {failure.subject}
        attempts = failure.attempts
        operations = [n for n in fragment.nodes
                      if n in extended.assignment]
        base_relations = [n for n in fragment.nodes
                          if isinstance(n, BaseRelationNode)]
        while True:
            self._checkpoint(
                context, f"runtime:failover {fragment.fragment_id}")
            candidate = self._next_candidate(
                context, fragment, excluded, base_relations, operations)
            if candidate is None:
                raise self._unavailable(context, fragment, failure,
                                        excluded)
            excluded.add(candidate)
            candidate_node = self.nodes[candidate]
            repaired = dict(extended.assignment)
            for operation in operations:
                repaired[operation] = candidate
            try:
                verify_assignment(extended.plan, self.policy, repaired)
            except UnauthorizedError:
                continue
            store = None
            if context.constant_store is not None:
                store = context.constant_store.subset(fragment.key_names)
            payload = SubQueryPayload(
                fragment_id=fragment.fragment_id,
                query_text=fragment.text,
                keystore=store,
            )
            blob = seal_envelope(payload, context.user_node.rsa_private,
                                 candidate_node.rsa_public)
            context.envelopes[fragment.fragment_id] = blob
            with context.trace_lock:
                context.trace.messages += 1
                context.trace.envelope_bytes += len(blob)
            takeover = replace(fragment, subject=candidate)
            view = augment_view(self.policy.view(candidate),
                                context.lineage)
            try:
                with self._lock_for(candidate):
                    opened = self._open_and_record(context, takeover,
                                                   candidate_node)
                    for table in inputs.values():
                        self._receive_input(context, takeover, view, table)
                    result = self._evaluate_fragment(
                        context, takeover, candidate_node, opened, view,
                        inputs)
            except _FragmentFailed as next_failure:
                attempts += next_failure.attempts
                continue
            event = FailoverEvent(
                fragment_id=fragment.fragment_id,
                failed_subject=failure.subject,
                replacement=candidate,
                attempts=attempts,
                seconds=self._clock() - started,
                repaired_assignment=repaired,
            )
            with context.trace_lock:
                context.trace.failovers.append(event)
            return result

    def _next_candidate(self, context: _RunContext, fragment: SubQuery,
                        excluded: set[str],
                        base_relations: list[PlanNode],
                        operations: list[PlanNode]) -> str | None:
        """The next failover candidate to try, or None when exhausted.

        Candidates are runtime subjects that are not excluded, not
        synthetic authorities, currently available per the health
        registry, and hold every base relation the fragment reads
        locally (a fragment embedding stored data can only move to a
        subject that stores the same relations).  Ordered by latency
        EWMA then name, so failover prefers the fastest healthy
        provider deterministically; the querying user is kept as the
        last resort — pulling computation back to the client defeats
        the outsourcing the assignment paid for.
        """
        candidates = []
        for name, node in self.nodes.items():
            if name in excluded or name.startswith("authority:"):
                continue
            if not self.health.available(name):
                continue
            if any(b.relation.name not in node.tables
                   for b in base_relations):
                continue
            candidates.append(name)
        if not candidates:
            return None
        candidates.sort(key=lambda n: (n == context.user,
                                       self.health.latency_hint(n), n))
        return candidates[0]

    def _unavailable(self, context: _RunContext, fragment: SubQuery,
                     failure: _FragmentFailed,
                     excluded: set[str]) -> ProviderUnavailableError:
        """Terminal runtime failure for one fragment (service escalates)."""
        return ProviderUnavailableError(
            f"fragment {fragment.fragment_id} lost provider "
            f"{failure.subject!r} and no authorized replacement is "
            f"available (tried {', '.join(sorted(excluded))})",
            subject=failure.subject,
            fragment_id=fragment.fragment_id,
            excluded=frozenset(excluded),
            trace=context.trace,
        )

    def _evaluate(self, context: _RunContext, fragment: SubQuery,
                  node: PlanNode, executor: Executor,
                  inputs: dict[int, Table], view: SubjectView,
                  impure: frozenset[int] | set[int]) -> Table:
        # Nodes whose subtree contains a boundary input (``impure``) are
        # never served from or stored into the executor memo: the memo
        # keys on node identity only, so a re-run of the same fragment
        # with value-different inputs would otherwise get a stale
        # subtree result.  Cross-run reuse for those nodes comes from
        # the fragment cache, which does key on input identity.
        cacheable = id(node) not in impure
        if id(node) in inputs:
            return inputs[id(node)]
        result = executor.lookup(node) if cacheable else None
        if result is None:
            children = [
                self._evaluate(context, fragment, child, executor, inputs,
                               view, impure)
                for child in node.children
            ]
            result = executor.execute_node(node, children)
            if cacheable:
                executor.memoize(node, result)
        if self.enforce and not isinstance(node, BaseRelationNode) \
                and not fragment.subject.startswith("authority:"):
            self._check_profile(
                view, context.profiles[node],
                f"relation at {node.label()}", context.trace,
                context.trace_lock,
            )
        return result

    def _executor_for(self, node: SubjectNode, subject: str,
                      payload: SubQueryPayload, signature: str,
                      context: _RunContext, generation: int) -> Executor:
        """A persistent executor per (subject, key material, policy).

        Keyed by the *value* of the key material (not object identity):
        envelopes deliver fresh deserialized stores every run, and an
        executor must keep its memoized results when the keys are the
        same.  The policy version is part of the key, mirroring the
        fragment cache: a ``grant``/``revoke`` may leave the delivered
        keystore unchanged, and serving memoized subtree results across
        it would skip the model-level checks on interior nodes that the
        re-run is supposed to repeat.  The reconcile pass rebases an
        executor's key onto new versions while no delta touches its
        subject — deltas on other subjects cannot change what this
        subject's checks conclude — and evicts it the moment one does.
        The per-subject lock serializes all use of any one subject's
        executors.
        """
        key = (subject, signature, context.constant_store_signature,
               self.policy.version)
        with self._caches_guard:
            self._reconcile_policy_caches_locked()
            executor = self._executors.get(key)
            if executor is not None:
                self._executors.move_to_end(key)
                return executor
        executor = Executor(
            node.tables, keystore=payload.keystore, udfs=node.udfs,
            constant_keystore=context.constant_store,
            cache_size=self.executor_cache_size,
            cache_bytes=self.executor_cache_bytes,
            join_strategy=self.settings.join_strategy,
            pool=self.settings.pool(),
        )
        current_version = self.policy.version
        with self._caches_guard:
            # Pool the executor only if invalidate_caches() has not run
            # since this fragment started: it snapshotted ``node.tables``
            # that may predate a concurrent refresh.  The current run
            # still uses it (the race makes either outcome valid for
            # in-flight work); it just must not outlive the run.  The
            # same goes for an executor keyed on an already-superseded
            # policy version (a grant/revoke landed mid-run).
            self._reconcile_policy_caches_locked()
            if self._cache_generation == generation \
                    and key[3] == current_version:
                self._executors[key] = executor
                self._executors.move_to_end(key)
                while len(self._executors) > _EXECUTOR_POOL_LIMIT:
                    self._executors.popitem(last=False)
        return executor

    # ------------------------------------------------------------------
    # Enforcement
    # ------------------------------------------------------------------
    def _node_for(self, subject: str) -> SubjectNode:
        if subject not in self.nodes:
            raise DispatchError(f"no runtime node for subject {subject!r}")
        return self.nodes[subject]

    def _lock_for(self, subject: str) -> threading.Lock:
        with self._locks_guard:
            lock = self._subject_locks.get(subject)
            if lock is None:
                lock = threading.Lock()
                self._subject_locks[subject] = lock
            return lock

    def _check_profile(self, view: SubjectView, profile, context: str,
                       trace: ExecutionTrace,
                       trace_lock: threading.Lock | None = None) -> None:
        check = check_relation(view, profile)
        if not check.authorized:
            if trace_lock is None:
                trace.violations.extend(check.violations)
            else:
                with trace_lock:
                    trace.violations.extend(check.violations)
            raise UnauthorizedError(
                f"{view.subject} is not authorized for {context}: "
                + "; ".join(check.violations),
                subject=view.subject,
                violations=check.violations,
            )

    def _check_values(self, view: SubjectView, table: Table,
                      trace: ExecutionTrace,
                      trace_lock: threading.Lock | None = None) -> None:
        """Value-level guard: representations must match authorizations."""
        for column in table.columns:
            values = table.column_values(column)
            sample = next((v for v in values if v is not None), None)
            if sample is None:
                continue
            if isinstance(sample, (EncryptedValue, EncryptedAggregate)):
                if not view.can_view_encrypted(column):
                    message = (f"{view.subject} received encrypted column "
                               f"{column} without any authorization")
                    self._record_violation(trace, trace_lock, message)
                    raise UnauthorizedError(message, subject=view.subject)
            else:
                if not view.can_view_plaintext(column):
                    message = (f"{view.subject} received plaintext column "
                               f"{column} without plaintext authorization")
                    self._record_violation(trace, trace_lock, message)
                    raise UnauthorizedError(message, subject=view.subject)

    @staticmethod
    def _record_violation(trace: ExecutionTrace,
                          trace_lock: threading.Lock | None,
                          message: str) -> None:
        if trace_lock is None:
            trace.violations.append(message)
        else:
            with trace_lock:
                trace.violations.append(message)


def _input_dependent_ids(root: PlanNode,
                         inputs: dict[int, Table]) -> set[int]:
    """Ids of nodes whose subtree contains a boundary-input node.

    Their results are functions of the delivered input tables, not of
    the executor's own catalog, so they must stay out of the executor's
    identity-keyed memo (see :meth:`DistributedRuntime._evaluate`).
    """
    dependent: set[int] = set()
    pure: set[int] = set()

    def visit(node: PlanNode) -> bool:
        if id(node) in inputs:
            return True
        if id(node) in dependent:
            return True
        if id(node) in pure:
            return False
        # Evaluate all children (no short-circuit): shared subtrees must
        # all be classified, not just the first impure one.
        flags = [visit(child) for child in node.children]
        if any(flags):
            dependent.add(id(node))
            return True
        pure.add(id(node))
        return False

    visit(root)
    return dependent


def _check_schedule(schedule: str) -> str:
    if schedule not in ("parallel", "sequential"):
        raise DispatchError(f"unknown schedule {schedule!r}")
    return schedule


def generate_subject_keys(
    subjects: list[Subject] | list[str], rsa_bits: int = 512,
) -> dict[str, tuple[RsaPublicKey, RsaPrivateKey]]:
    """One RSA keypair per subject, generated once for reuse.

    Long-lived deployments (the service layer, repeated-query benchmarks)
    pass the result to :func:`build_runtime` via ``rsa_keys`` so node
    construction stops paying keygen per query run.
    """
    names = [s.name if isinstance(s, Subject) else s for s in subjects]
    return {name: generate_keypair(rsa_bits) for name in names}


def build_runtime(policy: Policy, subjects: list[Subject],
                  authority_tables: Mapping[str, Mapping[str, Table]],
                  user: str,
                  udfs: Mapping[str, UdfCallable] | None = None,
                  rsa_bits: int = 512,
                  rsa_keys: Mapping[
                      str, tuple[RsaPublicKey, RsaPrivateKey]] | None = None,
                  schedule: str = "sequential",
                  max_workers: int | None = None,
                  latency_seconds: float | Mapping[str, float] = 0.0,
                  executor_cache_size: int = 128,
                  executor_cache_bytes: int | None = None,
                  clock=None, sleeper=None,
                  health: HealthRegistry | None = None,
                  fault_injector: FaultInjector | None = None,
                  retry: RetryPolicy | None = None,
                  failover: bool = True,
                  settings: ExecutionSettings | None = None,
                  ) -> DistributedRuntime:
    """Convenience constructor: one node per subject, tables at owners.

    ``authority_tables`` maps authority name → {relation name → table};
    ``rsa_keys`` (subject name → keypair) skips per-node key generation;
    ``latency_seconds`` — one float for every subject or a per-subject
    mapping — simulates provider round-trip delay per fragment.  A
    mapping naming a subject with no node here raises
    :class:`ValueError` before any node is built (a silently ignored
    name would make its latency vanish instead of failing loudly).
    ``clock``/``sleeper``/``health``/``fault_injector``/``retry``/
    ``failover``/``settings`` pass through to
    :class:`DistributedRuntime`.
    """
    if isinstance(latency_seconds, Mapping):
        known = {subject.name for subject in subjects}
        unknown = sorted(set(latency_seconds) - known)
        if unknown:
            raise ValueError(
                "latency_seconds names unknown subjects: "
                + ", ".join(repr(name) for name in unknown))
    nodes: dict[str, SubjectNode] = {}
    for subject in subjects:
        tables = authority_tables.get(subject.name, {})
        if isinstance(latency_seconds, Mapping):
            latency = latency_seconds.get(subject.name, 0.0)
        else:
            latency = latency_seconds
        nodes[subject.name] = SubjectNode.create(
            subject, tables=tables, udfs=udfs, rsa_bits=rsa_bits,
            rsa_keys=(rsa_keys or {}).get(subject.name),
            latency_seconds=latency,
        )
    return DistributedRuntime(
        policy, nodes, user, schedule=schedule, max_workers=max_workers,
        executor_cache_size=executor_cache_size,
        executor_cache_bytes=executor_cache_bytes,
        clock=clock, sleeper=sleeper, health=health,
        fault_injector=fault_injector, retry=retry, failover=failover,
        settings=settings,
    )

"""Envelopes and key-material serialization for query dispatch (§6).

"The communication to each subject will be signed with the private key of
the user and encrypted with the subject's public key" — the envelope
format here is exactly that ``[[q, keys] priU ] pubS`` construction:

* the payload (fragment id, query text, and serialized key material) is
  signed with the user's RSA private key;
* payload + signature are hybrid-encrypted under the recipient's RSA
  public key;
* the recipient decrypts with its private key and verifies the user's
  signature before acting, detecting tampering and spoofed dispatches.
"""

from __future__ import annotations

import hashlib
import json
import struct
from dataclasses import dataclass

from repro.core.keys import QueryKey
from repro.core.requirements import EncryptionScheme
from repro.crypto.keymanager import KeyMaterial, KeyStore
from repro.crypto.paillier import PaillierPrivateKey, PaillierPublicKey
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey
from repro.exceptions import DispatchError


@dataclass(frozen=True)
class SubQueryPayload:
    """What a subject receives: its sub-query and the keys it needs."""

    fragment_id: str
    query_text: str
    keystore: KeyStore


def serialize_key_material(material: KeyMaterial) -> dict:
    """JSON-safe encoding of one key's material."""
    encoded: dict[str, object] = {
        "attributes": sorted(material.query_key.attributes),
        "scheme": material.query_key.scheme.value,
    }
    if material.symmetric is not None:
        encoded["symmetric"] = material.symmetric.hex()
    if material.paillier_public is not None:
        encoded["paillier_n"] = hex(material.paillier_public.n)
    if material.paillier_private is not None:
        encoded["paillier_lam"] = hex(material.paillier_private.lam)
        encoded["paillier_mu"] = hex(material.paillier_private.mu)
    return encoded


def deserialize_key_material(encoded: dict) -> KeyMaterial:
    """Inverse of :func:`serialize_key_material`."""
    try:
        query_key = QueryKey(
            attributes=frozenset(encoded["attributes"]),
            scheme=EncryptionScheme(encoded["scheme"]),
        )
        symmetric = bytes.fromhex(encoded["symmetric"]) \
            if "symmetric" in encoded else None
        public = private = None
        if "paillier_n" in encoded:
            public = PaillierPublicKey(int(encoded["paillier_n"], 16))
        if "paillier_lam" in encoded and public is not None:
            private = PaillierPrivateKey(
                public=public,
                lam=int(encoded["paillier_lam"], 16),
                mu=int(encoded["paillier_mu"], 16),
            )
        return KeyMaterial(
            query_key=query_key,
            symmetric=symmetric,
            paillier_public=public,
            paillier_private=private,
        )
    except (KeyError, ValueError) as error:
        raise DispatchError(f"malformed key material: {error}") from None


def keystore_signature(store: KeyStore | None) -> str:
    """Deterministic digest of a store's key material.

    Two stores with the same signature hold value-identical material, so
    a long-lived executor keyed on it can keep its memoized subtree
    results across queries: re-delivered envelopes carry *deserialized
    copies* of the same keys, which must not read as a key change.
    """
    if store is None:
        return "-"
    body = json.dumps(
        [serialize_key_material(store.material(name))
         for name in sorted(store.names())],
        sort_keys=True,
    )
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def encode_payload(payload: SubQueryPayload) -> bytes:
    """Serialize a payload to bytes."""
    body = {
        "fragment_id": payload.fragment_id,
        "query_text": payload.query_text,
        "keys": [
            serialize_key_material(payload.keystore.material(name))
            for name in sorted(payload.keystore.names())
        ],
    }
    return json.dumps(body, sort_keys=True).encode("utf-8")


def decode_payload(blob: bytes) -> SubQueryPayload:
    """Inverse of :func:`encode_payload`."""
    try:
        body = json.loads(blob.decode("utf-8"))
        keystore = KeyStore(
            deserialize_key_material(k) for k in body["keys"]
        )
        return SubQueryPayload(
            fragment_id=body["fragment_id"],
            query_text=body["query_text"],
            keystore=keystore,
        )
    except (json.JSONDecodeError, KeyError, UnicodeDecodeError) as error:
        raise DispatchError(f"malformed payload: {error}") from None


def seal_envelope(payload: SubQueryPayload, sender_private: RsaPrivateKey,
                  recipient_public: RsaPublicKey) -> bytes:
    """Build ``[[payload] pri_sender ] pub_recipient``."""
    body = encode_payload(payload)
    signature = sender_private.sign(body)
    framed = struct.pack(">I", len(body)) + body + signature
    return recipient_public.encrypt(framed)


def open_envelope(blob: bytes, recipient_private: RsaPrivateKey,
                  sender_public: RsaPublicKey) -> SubQueryPayload:
    """Decrypt, verify, and decode an envelope."""
    framed = recipient_private.decrypt(blob)
    if len(framed) < 4:
        raise DispatchError("truncated envelope")
    (body_len,) = struct.unpack(">I", framed[:4])
    body = framed[4:4 + body_len]
    signature = framed[4 + body_len:]
    if not sender_public.verify(body, signature):
        raise DispatchError("envelope signature verification failed")
    return decode_payload(body)

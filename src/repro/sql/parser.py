"""Recursive-descent parser for the paper's SQL subset.

Grammar (conjunctive conditions only, matching §1's query class)::

    query     := SELECT [DISTINCT] items FROM table joins* [WHERE conj]
                 [GROUP BY columns] [HAVING conj]
    items     := item (',' item)*
    item      := column | agg '(' column | '*' ')' [AS ident]
    joins     := [INNER] JOIN table ON conj
    conj      := cond (AND cond)*
    cond      := operand op operand | column [NOT] LIKE string
               | column [NOT] IN '(' literal (',' literal)* ')'
               | column BETWEEN literal AND literal
    operand   := column | literal
    literal   := number | string | DATE string
"""

from __future__ import annotations

from datetime import date

from repro.core.operators import AggregateFunction
from repro.core.predicates import ComparisonOp
from repro.exceptions import SqlSyntaxError
from repro.sql.ast import (
    AggregateCall,
    ColumnRef,
    ComparisonExpr,
    JoinClause,
    Literal,
    SelectItem,
    SelectQuery,
    TableRef,
)
from repro.sql.tokenizer import (
    AGGREGATE_NAMES,
    Token,
    TokenType,
    tokenize,
    unquote_string,
)

_OPERATOR_MAP = {
    "=": ComparisonOp.EQ,
    "<>": ComparisonOp.NEQ,
    "<": ComparisonOp.LT,
    "<=": ComparisonOp.LE,
    ">": ComparisonOp.GT,
    ">=": ComparisonOp.GE,
}

_NEGATED = {
    ComparisonOp.EQ: ComparisonOp.NEQ,
    ComparisonOp.NEQ: ComparisonOp.EQ,
    ComparisonOp.LT: ComparisonOp.GE,
    ComparisonOp.LE: ComparisonOp.GT,
    ComparisonOp.GT: ComparisonOp.LE,
    ComparisonOp.GE: ComparisonOp.LT,
}


def parse_sql(sql: str) -> SelectQuery:
    """Parse one SELECT statement.

    Examples
    --------
    >>> q = parse_sql("select T, avg(P) from Hosp join Ins on S=C "
    ...               "where D='stroke' group by T having avg(P)>100")
    >>> len(q.select), len(q.joins), len(q.where), len(q.having)
    (2, 1, 1, 1)
    """
    return _Parser(tokenize(sql)).parse_query()


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._position = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self._tokens[self._position]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.END:
            self._position += 1
        return token

    def error(self, message: str) -> SqlSyntaxError:
        token = self.current
        return SqlSyntaxError(
            f"{message} (found {token.value!r})",
            line=token.line, column=token.column,
        )

    def expect_keyword(self, name: str) -> Token:
        if not self.current.is_keyword(name):
            raise self.error(f"expected {name.upper()}")
        return self.advance()

    def expect_punct(self, value: str) -> Token:
        if self.current.type is not TokenType.PUNCTUATION \
                or self.current.value != value:
            raise self.error(f"expected {value!r}")
        return self.advance()

    def accept_keyword(self, *names: str) -> Token | None:
        if self.current.is_keyword(*names):
            return self.advance()
        return None

    def expect_identifier(self) -> str:
        if self.current.type is not TokenType.IDENTIFIER:
            raise self.error("expected an identifier")
        return self.advance().value

    # ------------------------------------------------------------------
    # Grammar
    # ------------------------------------------------------------------
    def parse_query(self) -> SelectQuery:
        query = SelectQuery()
        self.expect_keyword("select")
        if self.accept_keyword("distinct"):
            query.distinct = True
        query.select.append(self.parse_select_item())
        while self._accept_comma():
            query.select.append(self.parse_select_item())

        self.expect_keyword("from")
        query.from_table = TableRef(self.expect_identifier())
        while True:
            if self.accept_keyword("inner"):
                self.expect_keyword("join")
                query.joins.append(self.parse_join())
            elif self.current.is_keyword("join"):
                self.advance()
                query.joins.append(self.parse_join())
            elif self.current.type is TokenType.PUNCTUATION \
                    and self.current.value == ",":
                # Comma join: cartesian product, conditions in WHERE.
                self.advance()
                query.joins.append(
                    JoinClause(TableRef(self.expect_identifier()), ())
                )
            else:
                break

        if self.accept_keyword("where"):
            query.where = self.parse_conjunction()
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            query.group_by.append(self.parse_column())
            while self._accept_comma():
                query.group_by.append(self.parse_column())
        if self.accept_keyword("having"):
            query.having = self.parse_conjunction()

        if self.current.type is TokenType.PUNCTUATION \
                and self.current.value == ";":
            self.advance()
        if self.current.type is not TokenType.END:
            raise self.error("unexpected trailing input")
        return query

    def parse_select_item(self) -> SelectItem:
        token = self.current
        if token.type is TokenType.IDENTIFIER \
                and token.value.lower() in AGGREGATE_NAMES \
                and self._peek_is_open_paren():
            return SelectItem(self.parse_aggregate())
        return SelectItem(self.parse_column())

    def _peek_is_open_paren(self) -> bool:
        nxt = self._tokens[self._position + 1]
        return nxt.type is TokenType.PUNCTUATION and nxt.value == "("

    def parse_aggregate(self) -> AggregateCall:
        name = self.expect_identifier().lower()
        function = AggregateFunction(name)
        self.expect_punct("(")
        if self.current.type is TokenType.STAR:
            if function is not AggregateFunction.COUNT:
                raise self.error(f"{name}(*) is not valid")
            self.advance()
            argument = None
        else:
            if self.accept_keyword("distinct"):
                pass  # distinct aggregates treated as plain (estimator-level)
            argument = self.parse_column()
        self.expect_punct(")")
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_identifier()
        if argument is None and alias is None:
            alias = "count"
        return AggregateCall(function=function, argument=argument,
                             alias=alias)

    def parse_column(self) -> ColumnRef:
        first = self.expect_identifier()
        if self.current.type is TokenType.PUNCTUATION \
                and self.current.value == ".":
            self.advance()
            second = self.expect_identifier()
            return ColumnRef(name=second, table=first)
        return ColumnRef(name=first)

    def parse_join(self) -> JoinClause:
        table = TableRef(self.expect_identifier())
        self.expect_keyword("on")
        conditions = self.parse_conjunction()
        return JoinClause(table, tuple(conditions))

    def parse_conjunction(self) -> list[ComparisonExpr]:
        conditions = [self.parse_condition()]
        while self.accept_keyword("and"):
            conditions.append(self.parse_condition())
        return conditions

    def parse_condition(self) -> ComparisonExpr:
        left = self.parse_operand()
        negated = bool(self.accept_keyword("not"))
        if self.accept_keyword("like"):
            right = self.parse_literal()
            if negated:
                raise self.error("NOT LIKE is not supported")
            return ComparisonExpr(left, ComparisonOp.LIKE, right)
        if self.accept_keyword("in"):
            self.expect_punct("(")
            values = [self.parse_literal()]
            while self._accept_comma():
                values.append(self.parse_literal())
            self.expect_punct(")")
            if negated:
                raise self.error("NOT IN is not supported")
            return ComparisonExpr(left, ComparisonOp.IN, tuple(values))
        if self.accept_keyword("between"):
            if negated:
                raise self.error("NOT BETWEEN is not supported")
            low = self.parse_literal()
            self.expect_keyword("and")
            high = self.parse_literal()
            # BETWEEN is sugar for two range conditions; represent as a
            # synthetic IN-like pair the planner expands.
            return ComparisonExpr(left, ComparisonOp.IN,
                                  ("__between__", low, high))
        if negated:
            raise self.error("NOT must be followed by LIKE/IN/BETWEEN")
        if self.current.type is not TokenType.OPERATOR:
            raise self.error("expected a comparison operator")
        op = _OPERATOR_MAP[self.advance().value]
        right = self.parse_operand()
        return ComparisonExpr(left, op, right)

    def parse_operand(self) -> ColumnRef | Literal | AggregateCall:
        token = self.current
        if token.type is TokenType.IDENTIFIER:
            if token.value.lower() in AGGREGATE_NAMES \
                    and self._peek_is_open_paren():
                # HAVING conditions may reference aggregates (avg(P) > 100).
                return self.parse_aggregate()
            return self.parse_column()
        return self.parse_literal()

    def parse_literal(self) -> Literal:
        token = self.current
        if token.type is TokenType.NUMBER:
            self.advance()
            if "." in token.value:
                return Literal(float(token.value))
            return Literal(int(token.value))
        if token.type is TokenType.STRING:
            self.advance()
            return Literal(unquote_string(token.value))
        if token.is_keyword("date"):
            self.advance()
            if self.current.type is not TokenType.STRING:
                raise self.error("expected a date string")
            text = unquote_string(self.advance().value)
            try:
                return Literal(date.fromisoformat(text))
            except ValueError:
                raise self.error(f"invalid date {text!r}") from None
        raise self.error("expected a literal")

    def _accept_comma(self) -> bool:
        if self.current.type is TokenType.PUNCTUATION \
                and self.current.value == ",":
            self.advance()
            return True
        return False

"""SQL front end: tokenizer, parser, and logical planner.

Turns the paper's query class (``select from where group by having`` with
joins, §1) into the query-plan trees the authorization pipeline consumes,
with projections pushed into the leaves and selections pushed below the
joins, as the paper assumes of its optimizer.
"""

from repro.sql.ast import (
    AggregateCall,
    ColumnRef,
    ComparisonExpr,
    JoinClause,
    Literal,
    SelectItem,
    SelectQuery,
    TableRef,
)
from repro.sql.parser import parse_sql
from repro.sql.planner import plan_query
from repro.sql.tokenizer import Token, TokenType, tokenize

__all__ = [
    "AggregateCall", "ColumnRef", "ComparisonExpr", "JoinClause",
    "Literal", "SelectItem", "SelectQuery", "TableRef", "Token",
    "TokenType", "parse_sql", "plan_query", "tokenize",
]

"""Abstract syntax tree for the supported SQL subset."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.operators import AggregateFunction
from repro.core.predicates import ComparisonOp


@dataclass(frozen=True)
class ColumnRef:
    """A column reference, optionally qualified (``Hosp.S``)."""

    name: str
    table: str | None = None

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Literal:
    """A literal constant (number, string, or date)."""

    value: object

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


@dataclass(frozen=True)
class AggregateCall:
    """``f(column)`` or ``count(*)``, optionally aliased."""

    function: AggregateFunction
    argument: ColumnRef | None
    alias: str | None = None

    def __str__(self) -> str:
        arg = str(self.argument) if self.argument is not None else "*"
        text = f"{self.function}({arg})"
        return f"{text} as {self.alias}" if self.alias else text


@dataclass(frozen=True)
class SelectItem:
    """One select-list entry: a column or an aggregate."""

    expression: ColumnRef | AggregateCall

    @property
    def is_aggregate(self) -> bool:
        return isinstance(self.expression, AggregateCall)


@dataclass(frozen=True)
class ComparisonExpr:
    """A basic condition ``left op right``."""

    left: ColumnRef | Literal
    op: ComparisonOp
    right: ColumnRef | Literal | tuple[Literal, ...]

    def __str__(self) -> str:
        if isinstance(self.right, tuple):
            values = ", ".join(str(v) for v in self.right)
            return f"{self.left} in ({values})"
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class TableRef:
    """A relation in the FROM clause."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class JoinClause:
    """``JOIN table ON condition``."""

    table: TableRef
    condition: tuple[ComparisonExpr, ...]


@dataclass
class SelectQuery:
    """A parsed ``select-from-where-group by-having`` query."""

    select: list[SelectItem] = field(default_factory=list)
    from_table: TableRef | None = None
    joins: list[JoinClause] = field(default_factory=list)
    where: list[ComparisonExpr] = field(default_factory=list)
    group_by: list[ColumnRef] = field(default_factory=list)
    having: list[ComparisonExpr] = field(default_factory=list)
    distinct: bool = False

    def __str__(self) -> str:
        parts = ["select "
                 + ("distinct " if self.distinct else "")
                 + ", ".join(str(i.expression) for i in self.select)]
        if self.from_table is not None:
            parts.append(f"from {self.from_table}")
        for join in self.joins:
            condition = " and ".join(str(c) for c in join.condition)
            parts.append(f"join {join.table} on {condition}")
        if self.where:
            parts.append("where " + " and ".join(str(c) for c in self.where))
        if self.group_by:
            parts.append("group by "
                         + ", ".join(str(c) for c in self.group_by))
        if self.having:
            parts.append("having "
                         + " and ".join(str(c) for c in self.having))
        return " ".join(parts)

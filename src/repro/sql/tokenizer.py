"""SQL tokenizer for the paper's query class.

Supports the ``select from where group by having`` queries of §1 with
joins, conjunctive conditions, aggregates, aliases, BETWEEN/IN/LIKE, and
the literal types the engine understands (integers, decimals, strings,
and ISO dates via ``date '2017-01-01'``).
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.exceptions import SqlSyntaxError

KEYWORDS = frozenset({
    "select", "from", "where", "group", "by", "having", "join", "on",
    "and", "as", "like", "in", "not", "between", "date", "inner",
    "distinct",
})

AGGREGATE_NAMES = frozenset({"sum", "avg", "min", "max", "count"})


class TokenType(enum.Enum):
    """Lexical categories."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    STAR = "star"
    END = "end"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    type: TokenType
    value: str
    line: int
    column: int

    def is_keyword(self, *names: str) -> bool:
        """Whether this token is one of the given keywords."""
        return self.type is TokenType.KEYWORD and self.value in names

    def __str__(self) -> str:
        return f"{self.value!r}"


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>--[^\n]*)
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<string>'(?:[^']|'')*')
  | (?P<identifier>[A-Za-z_][A-Za-z0-9_$#]*)
  | (?P<operator><=|>=|<>|!=|=|<|>)
  | (?P<punct>[(),.;])
  | (?P<star>\*)
    """,
    re.VERBOSE,
)


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql``; raises :class:`SqlSyntaxError` on bad input.

    Examples
    --------
    >>> [t.value for t in tokenize("select T from Hosp")][:3]
    ['select', 'T', 'from']
    """
    tokens: list[Token] = []
    line = 1
    line_start = 0
    position = 0
    while position < len(sql):
        match = _TOKEN_RE.match(sql, position)
        if match is None:
            column = position - line_start + 1
            raise SqlSyntaxError(
                f"unexpected character {sql[position]!r}",
                line=line, column=column,
            )
        kind = match.lastgroup
        text = match.group()
        column = position - line_start + 1
        if kind in ("ws", "comment"):
            newlines = text.count("\n")
            if newlines:
                line += newlines
                line_start = position + text.rindex("\n") + 1
        elif kind == "number":
            tokens.append(Token(TokenType.NUMBER, text, line, column))
        elif kind == "string":
            tokens.append(Token(TokenType.STRING, text, line, column))
        elif kind == "identifier":
            lowered = text.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, lowered, line, column))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, text, line, column))
        elif kind == "operator":
            canonical = "<>" if text == "!=" else text
            tokens.append(Token(TokenType.OPERATOR, canonical, line, column))
        elif kind == "punct":
            tokens.append(Token(TokenType.PUNCTUATION, text, line, column))
        elif kind == "star":
            tokens.append(Token(TokenType.STAR, text, line, column))
        position = match.end()
    tokens.append(Token(TokenType.END, "", line, len(sql) - line_start + 1))
    return tokens


def unquote_string(literal: str) -> str:
    """Strip quotes and unescape doubled quotes of a string literal."""
    return literal[1:-1].replace("''", "'")

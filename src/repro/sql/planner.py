"""Logical planner: parsed SQL → query-plan tree.

Applies the classical optimization criteria the paper assumes (§1):
projections are pushed down into the leaves so relations expose only the
attributes the query touches, single-relation selections are pushed below
the joins, and joins are built left-deep in FROM order.  The produced
:class:`~repro.core.plan.QueryPlan` is exactly what the authorization
pipeline (profiles → candidates → extension) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import MutableMapping

from repro.core.operators import (
    Aggregate,
    BaseRelationNode,
    CartesianProduct,
    GroupBy,
    Join,
    PlanNode,
    Projection,
    Selection,
)
from repro.core.plan import QueryPlan
from repro.core.predicates import (
    AttributeComparisonPredicate,
    AttributeValuePredicate,
    ComparisonOp,
    Conjunction,
    Predicate,
)
from repro.core.schema import Schema
from repro.exceptions import SqlAnalysisError
from repro.sql.ast import (
    AggregateCall,
    ColumnRef,
    ComparisonExpr,
    Literal,
    SelectQuery,
)
from repro.sql.parser import parse_sql


def plan_query(query: SelectQuery | str, schema: Schema,
               cache: MutableMapping[tuple[str, int],
                                     tuple[QueryPlan, Schema]] | None
               = None) -> QueryPlan:
    """Build the query plan for ``query`` against ``schema``.

    ``cache`` (keyed by the SQL text and the schema's identity) memoises
    whole plans for repeated queries: returning the *same* plan object —
    not merely an equal one — lets every identity-keyed layer downstream
    (assignment cache short-circuit, executor subtree memos, fragment
    reuse) hit as well.  Entries store ``(plan, schema)``: pinning the
    schema keeps its ``id`` from being recycled onto a different schema
    while the entry lives.  Only usable with string queries; callers
    must treat cached plans as immutable.

    Examples
    --------
    >>> from repro.paper_example import build_schema
    >>> plan = plan_query(
    ...     "select T, avg(P) from Hosp join Ins on S=C "
    ...     "where D='stroke' group by T having avg(P)>100",
    ...     build_schema())
    >>> plan.root.label()
    'σ[P>100]'
    """
    if isinstance(query, str):
        if cache is not None:
            key = (query, id(schema))
            entry = cache.get(key)
            if entry is None:
                entry = (_Planner(parse_sql(query), schema).build(),
                         schema)
                cache[key] = entry
            else:
                # Refresh recency on ordered bounded caches so a hot
                # plan is not evicted FIFO by a stream of one-off
                # queries (losing the identity chain downstream).
                refresh = getattr(cache, "move_to_end", None)
                if refresh is not None:
                    refresh(key)
            return entry[0]
        query = parse_sql(query)
    return _Planner(query, schema).build()


@dataclass
class _ResolvedCondition:
    """A WHERE/ON condition with its attribute requirements resolved."""

    expr: ComparisonExpr
    relations: frozenset[str]
    predicates: tuple[Predicate, ...]


class _Planner:
    def __init__(self, query: SelectQuery, schema: Schema) -> None:
        self.query = query
        self.schema = schema
        if query.from_table is None:
            raise SqlAnalysisError("query lacks a FROM clause")
        self.tables = [query.from_table.name] + [
            j.table.name for j in query.joins
        ]
        for name in self.tables:
            if name not in schema:
                raise SqlAnalysisError(f"unknown relation {name!r}")
        if len(set(self.tables)) != len(self.tables):
            raise SqlAnalysisError(
                "self-joins are not supported (attribute names are global)"
            )
        self.owners = schema.attribute_owner_map()

    # ------------------------------------------------------------------
    # Resolution helpers
    # ------------------------------------------------------------------
    def resolve_column(self, column: ColumnRef) -> str:
        """Resolve a column reference to its global attribute name."""
        owner = self.owners.get(column.name)
        if owner is None or owner not in self.tables:
            raise SqlAnalysisError(
                f"column {column} does not belong to any queried relation"
            )
        if column.table is not None and column.table != owner:
            raise SqlAnalysisError(
                f"column {column} actually belongs to {owner}"
            )
        return column.name

    def relation_of(self, attribute: str) -> str:
        return self.owners[attribute]

    # ------------------------------------------------------------------
    # Condition translation
    # ------------------------------------------------------------------
    def translate_condition(self, expr: ComparisonExpr,
                            ) -> _ResolvedCondition:
        left, right = expr.left, expr.right
        if isinstance(left, AggregateCall) \
                or isinstance(right, AggregateCall):
            raise SqlAnalysisError(
                "aggregates may only appear in HAVING conditions"
            )
        if isinstance(left, Literal) and isinstance(right, ColumnRef):
            left, right = right, left
            flipped = {ComparisonOp.LT: ComparisonOp.GT,
                       ComparisonOp.LE: ComparisonOp.GE,
                       ComparisonOp.GT: ComparisonOp.LT,
                       ComparisonOp.GE: ComparisonOp.LE}
            expr = ComparisonExpr(left, flipped.get(expr.op, expr.op), right)
        if not isinstance(left, ColumnRef):
            raise SqlAnalysisError(f"unsupported condition {expr}")

        attribute = self.resolve_column(left)
        if isinstance(right, ColumnRef):
            other = self.resolve_column(right)
            predicate: Predicate = AttributeComparisonPredicate(
                attribute, expr.op, other
            )
            return _ResolvedCondition(
                expr=expr,
                relations=frozenset({self.relation_of(attribute),
                                     self.relation_of(other)}),
                predicates=(predicate,),
            )
        if isinstance(right, tuple) and right and right[0] == "__between__":
            low, high = right[1], right[2]
            return _ResolvedCondition(
                expr=expr,
                relations=frozenset({self.relation_of(attribute)}),
                predicates=(
                    AttributeValuePredicate(attribute, ComparisonOp.GE,
                                            low.value),
                    AttributeValuePredicate(attribute, ComparisonOp.LE,
                                            high.value),
                ),
            )
        if isinstance(right, tuple):
            values = tuple(v.value for v in right)
            predicate = AttributeValuePredicate(attribute, ComparisonOp.IN,
                                                values)
        else:
            predicate = AttributeValuePredicate(attribute, expr.op,
                                                right.value)
        return _ResolvedCondition(
            expr=expr,
            relations=frozenset({self.relation_of(attribute)}),
            predicates=(predicate,),
        )

    # ------------------------------------------------------------------
    # Plan construction
    # ------------------------------------------------------------------
    def build(self) -> QueryPlan:
        where = [self.translate_condition(c) for c in self.query.where]
        join_conditions: list[tuple[int, _ResolvedCondition]] = []
        for index, join in enumerate(self.query.joins):
            for expr in join.condition:
                condition = self.translate_condition(expr)
                join_conditions.append((index, condition))

        aggregates = self._collect_aggregates()
        group_attrs = [self.resolve_column(c) for c in self.query.group_by]
        select_columns = [
            self.resolve_column(item.expression)
            for item in self.query.select
            if isinstance(item.expression, ColumnRef)
        ]

        needed = self._needed_attributes(
            where, join_conditions, aggregates, group_attrs, select_columns
        )

        # Attributes consumed above the join tree (outputs, grouping,
        # aggregation, and plain-column HAVING conditions).
        final_needed: set[str] = set(select_columns) | set(group_attrs)
        for aggregate in aggregates:
            if aggregate.attribute is not None:
                final_needed.add(aggregate.attribute)
        for expr in self.query.having:
            for operand in (expr.left, expr.right):
                if isinstance(operand, ColumnRef):
                    final_needed.add(self.resolve_column(operand))

        # Attributes each pending join/cross condition still needs, keyed
        # by the earliest stage at which the condition can be applied.
        def condition_attributes(condition: _ResolvedCondition) -> set[str]:
            out: set[str] = set()
            for predicate in condition.predicates:
                out |= predicate.attributes()
            return out

        # Leaves with pushed-down projections and local selections; the
        # paper assumes "projections are pushed down to avoid retrieving
        # data that are not of interest for the query", so attributes used
        # only in a leaf's local predicates are projected away afterwards.
        subtrees: dict[str, PlanNode] = {}
        upstream_needed: set[str] = set(final_needed)
        for _, condition in join_conditions:
            upstream_needed |= condition_attributes(condition)
        for condition in where:
            if len(condition.relations) > 1:
                upstream_needed |= condition_attributes(condition)
        for name in self.tables:
            relation = self.schema.relation(name)
            keep = needed & relation.attribute_set
            if not keep:
                keep = frozenset([relation.attribute_names[0]])
            node: PlanNode = BaseRelationNode(relation, keep)
            local = [c for c in where
                     if c.relations == frozenset({name})]
            predicates = [p for c in local for p in c.predicates]
            if predicates:
                node = Selection(node, Conjunction(predicates))
                survivors = upstream_needed & relation.attribute_set
                if survivors and survivors < keep:
                    node = Projection(node, survivors)
            subtrees[name] = node

        # Left-deep join tree in FROM order, pruning dead attributes after
        # every join.
        joined = {self.tables[0]}
        current = subtrees[self.tables[0]]
        cross_where = [c for c in where if len(c.relations) > 1]
        pending = list(join_conditions)
        for index, join in enumerate(self.query.joins):
            name = join.table.name
            right = subtrees[name]
            joined.add(name)
            on_predicates = [
                p
                for join_index, condition in pending
                if join_index == index
                for p in condition.predicates
            ]
            pending = [(i, c) for i, c in pending if i != index]
            # Adopt cross-relation WHERE conditions once both sides exist.
            adopted = [c for c in cross_where if c.relations <= joined]
            cross_where = [c for c in cross_where if c.relations > joined]
            on_predicates.extend(p for c in adopted for p in c.predicates)
            comparison_predicates = [
                p for p in on_predicates
                if isinstance(p, AttributeComparisonPredicate)
            ]
            residual = [p for p in on_predicates
                        if not isinstance(p, AttributeComparisonPredicate)]
            # Cosmetic canonicalization only: equality conjuncts first
            # (stable, in source order) so labels and dispatched SQL read
            # "hash keys, then residuals".  Execution does not depend on
            # this — Join.partition_condition classifies conjuncts
            # wherever they appear.
            comparison_predicates.sort(
                key=lambda p: p.op is not ComparisonOp.EQ
            )
            if comparison_predicates:
                current = Join(current, right,
                               Conjunction(comparison_predicates))
            else:
                current = CartesianProduct(current, right)
            if residual:
                current = Selection(current, Conjunction(residual))
            still_needed = set(final_needed)
            for _, condition in pending:
                still_needed |= condition_attributes(condition)
            for condition in cross_where:
                still_needed |= condition_attributes(condition)
            visible = self._visible_attributes(current)
            keep_now = still_needed & visible
            if keep_now and keep_now < visible:
                current = Projection(current, keep_now)
        if cross_where:
            leftover = [p for c in cross_where for p in c.predicates]
            current = Selection(current, Conjunction(leftover))
            visible = self._visible_attributes(current)
            keep_now = final_needed & visible
            if keep_now and keep_now < visible:
                current = Projection(current, keep_now)

        # Grouping and aggregation.
        if aggregates:
            current = GroupBy(current, group_attrs, aggregates)
        elif group_attrs:
            raise SqlAnalysisError(
                "GROUP BY without an aggregate in the select list"
            )

        # HAVING: conditions over aggregate outputs.
        having = [self._translate_having(c, aggregates)
                  for c in self.query.having]
        if having:
            current = Selection(current, Conjunction(having))

        # Final projection when the select list is narrower than the
        # current schema (pure-projection queries).
        if not aggregates and select_columns:
            current_attrs = self._visible_attributes(current)
            if frozenset(select_columns) < current_attrs:
                current = Projection(current, select_columns)
        return QueryPlan(current)

    def _collect_aggregates(self) -> list[Aggregate]:
        aggregates: list[Aggregate] = []
        for item in self.query.select:
            if not isinstance(item.expression, AggregateCall):
                continue
            call = item.expression
            argument = (self.resolve_column(call.argument)
                        if call.argument is not None else None)
            aggregates.append(Aggregate(
                function=call.function,
                attribute=argument,
                alias=call.alias,
            ))
        return aggregates

    def _translate_having(self, expr: ComparisonExpr,
                          aggregates: list[Aggregate]) -> Predicate:
        left, right = expr.left, expr.right
        if isinstance(right, AggregateCall) and not isinstance(
                left, AggregateCall):
            left, right = right, left
        if not isinstance(left, AggregateCall):
            # Plain column condition in HAVING — treat like a selection.
            resolved = self.translate_condition(expr)
            if len(resolved.predicates) != 1:
                return Conjunction(resolved.predicates)
            return resolved.predicates[0]
        output = self._match_aggregate(left, aggregates)
        if isinstance(right, (ColumnRef, AggregateCall)):
            other = (self._match_aggregate(right, aggregates)
                     if isinstance(right, AggregateCall)
                     else self.resolve_column(right))
            return AttributeComparisonPredicate(output, expr.op, other)
        if isinstance(right, tuple):
            raise SqlAnalysisError("IN/BETWEEN on aggregates not supported")
        return AttributeValuePredicate(output, expr.op, right.value)

    def _match_aggregate(self, call: AggregateCall,
                         aggregates: list[Aggregate]) -> str:
        argument = (self.resolve_column(call.argument)
                    if call.argument is not None else None)
        for aggregate in aggregates:
            if aggregate.function is call.function \
                    and aggregate.attribute == argument:
                return aggregate.output_name
        raise SqlAnalysisError(
            f"HAVING references {call}, which is not in the select list"
        )

    def _needed_attributes(self, where, join_conditions, aggregates,
                           group_attrs, select_columns) -> frozenset[str]:
        needed: set[str] = set(select_columns) | set(group_attrs)
        for aggregate in aggregates:
            if aggregate.attribute is not None:
                needed.add(aggregate.attribute)
        for condition in where:
            for predicate in condition.predicates:
                needed |= predicate.attributes()
        for _, condition in join_conditions:
            for predicate in condition.predicates:
                needed |= predicate.attributes()
        return frozenset(needed)

    def _visible_attributes(self, node: PlanNode) -> frozenset[str]:
        child_attrs = [self._visible_attributes(c) for c in node.children]
        return node.output_attributes(*child_attrs)

"""Regeneration of the paper's worked figures (Figures 3–8).

Each function returns both the computed artifact and a rendering that can
be compared side by side with the paper; the integration tests assert the
exact values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.assignment import AssignmentResult, assign
from repro.core.candidates import CandidateAssignment, compute_candidates
from repro.core.dispatch import DispatchPlan, dispatch
from repro.core.extension import ExtendedPlan, minimally_extend
from repro.core.keys import KeyAssignment, establish_keys
from repro.core.visibility import authorized_assignees
from repro.cost.pricing import PriceList
from repro.paper_example import RunningExample, build_running_example


@dataclass
class RunningExampleResults:
    """Everything the running example produces, figure by figure."""

    example: RunningExample
    figure3_profiles: dict[str, str]
    figure3_assignees: dict[str, str]
    figure4_views: dict[str, str]
    figure6_candidates: dict[str, str]
    figure7a: ExtendedPlan
    figure7b: ExtendedPlan
    keys7a: KeyAssignment
    keys7b: KeyAssignment
    figure8: DispatchPlan
    optimal: AssignmentResult

    def describe(self) -> str:
        """A multi-figure text report."""
        sections = [
            "== Figure 3: profiles and authorized assignees ==",
            *(f"{op}: {tag}   assignees: {self.figure3_assignees[op]}"
              for op, tag in self.figure3_profiles.items()),
            "", "== Figure 4: overall subject views ==",
            *(f"{s}: {v}" for s, v in self.figure4_views.items()),
            "", "== Figure 6: assignment candidates ==",
            *(f"{op}: {names}"
              for op, names in self.figure6_candidates.items()),
            "", "== Figure 7(a): minimally extended plan ==",
            self.figure7a.describe(),
            "keys: " + self.keys7a.describe().replace("\n", "; "),
            "", "== Figure 7(b): minimally extended plan ==",
            self.figure7b.describe(),
            "keys: " + self.keys7b.describe().replace("\n", "; "),
            "", "== Figure 8: query dispatch ==",
            self.figure8.describe(),
            "", "== Cost-optimal assignment ==",
            self.optimal.cost.describe(),
        ]
        return "\n".join(sections)


def run_running_example() -> RunningExampleResults:
    """Recompute Figures 3–8 from scratch."""
    example = build_running_example()
    operations = {
        "σ(D='stroke')": example.selection,
        "⋈(S=C)": example.join,
        "γ(T, avg(P))": example.group_by,
        "σ(avg(P)>100)": example.having,
    }

    profiles = example.plan.profiles()
    assignees = authorized_assignees(
        example.plan, example.policy, example.subject_names
    )
    candidates: CandidateAssignment = compute_candidates(
        example.plan, example.policy, example.subject_names
    )

    figure7a = minimally_extend(
        example.plan, example.policy, example.assignment_7a(),
        owners=example.owners,
    )
    figure7b = minimally_extend(
        example.plan, example.policy, example.assignment_7b(),
        owners=example.owners,
    )
    keys7a = establish_keys(figure7a, example.policy)
    keys7b = establish_keys(figure7b, example.policy)
    figure8 = dispatch(figure7a, keys7a, owners=example.owners, user="U")

    prices = PriceList.from_subjects(example.subjects)
    optimal = assign(
        example.plan, example.policy, example.subject_names, prices,
        user="U", owners=example.owners,
    )

    return RunningExampleResults(
        example=example,
        figure3_profiles={
            op: profiles[node].describe() for op, node in operations.items()
        },
        figure3_assignees={
            op: "".join(sorted(assignees[node]))
            for op, node in operations.items()
        },
        figure4_views={
            name: example.policy.view(name).describe()
            for name in example.subject_names
        },
        figure6_candidates={
            op: "".join(sorted(candidates[node]))
            for op, node in operations.items()
        },
        figure7a=figure7a,
        figure7b=figure7b,
        keys7a=keys7a,
        keys7b=keys7b,
        figure8=figure8,
        optimal=optimal,
    )

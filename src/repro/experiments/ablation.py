"""Ablations of the design choices DESIGN.md calls out.

* **visibility strategy** (§5's discussion): maximizing visibility
  (encrypt only when strictly required — our minimal extension),
  minimizing visibility (encrypt everything at the sources and decrypt
  on demand — the "minimum required view" plan), and the paper's
  candidate-driven middle ground;
* **assignment strategy** (§7): dynamic programming vs greedy vs
  exhaustive search;
* **UAPmix attribute split**: prefix vs alternating halves — the latter
  scatters plaintext across join equivalences and triggers condition 3 of
  Definition 4.1 (uniform visibility), collapsing provider eligibility.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.assignment import assign
from repro.core.candidates import compute_candidates
from repro.core.extension import minimally_extend
from repro.core.keys import establish_keys, schemes_for_extended_plan
from repro.core.plan import QueryPlan
from repro.cost.estimator import PlanEstimator
from repro.cost.model import CostModel
from repro.cost.network import NetworkTopology
from repro.cost.pricing import PriceList
from repro.exceptions import NoCandidateError
from repro.tpch.queries import all_queries
from repro.tpch.scenarios import Scenario, all_scenarios
from repro.tpch.schema import build_tpch_schema


@dataclass(frozen=True)
class AblationPoint:
    """One (query, variant) measurement."""

    query: int
    variant: str
    total_usd: float
    encrypted_attributes: int
    encryption_operations: int
    decryption_operations: int


def visibility_ablation(query_number: int, scenario_obj: Scenario,
                        scale: float = 0.1) -> list[AblationPoint]:
    """Minimal extension vs encrypt-everything on one query.

    The encrypt-everything variant realizes §5's "minimizing visibility"
    extreme: every leaf is fully encrypted (the minimum required views),
    and attributes are decrypted only when an operation requires
    plaintext.  The paper's approach encrypts only what the chosen
    assignment demands.
    """
    schema = build_tpch_schema(scale)
    prices = PriceList.from_subjects(scenario_obj.subjects)
    points: list[AblationPoint] = []

    # The paper's approach: candidate-driven minimal extension.
    plan = all_queries()[query_number - 1].plan(schema)
    outcome = assign(
        plan, scenario_obj.policy, scenario_obj.subject_names, prices,
        user=scenario_obj.user, owners=scenario_obj.owners,
    )
    points.append(AblationPoint(
        query=query_number,
        variant="minimal-extension",
        total_usd=outcome.cost.total_usd,
        encrypted_attributes=len(outcome.extended.encrypted_attributes),
        encryption_operations=len(outcome.extended.encryption_operations()),
        decryption_operations=len(outcome.extended.decryption_operations()),
    ))

    # Minimizing visibility: same assignment, but disable opportunistic
    # decryption so operations run on ciphertext whenever the model
    # allows, maximizing encrypted work.
    plan = all_queries()[query_number - 1].plan(schema)
    candidates = compute_candidates(
        plan, scenario_obj.policy, scenario_obj.subject_names
    )
    assignment = {}
    for node in plan.operations():
        names = candidates[node]
        if not names:
            raise NoCandidateError(f"no candidate for {node.label()}")
        # Prefer providers (most encrypted execution), then authorities.
        providers = [n for n in sorted(names) if n.startswith("P")]
        assignment[node] = providers[0] if providers else sorted(names)[0]
    extended = minimally_extend(
        plan, scenario_obj.policy, assignment, owners=scenario_obj.owners,
        deliver_to=scenario_obj.user, opportunistic_decryption=False,
    )
    schemes = schemes_for_extended_plan(extended)
    keys = establish_keys(extended, scenario_obj.policy, schemes=schemes)
    model = CostModel(prices, NetworkTopology.paper_defaults(
        scenario_obj.user), PlanEstimator(schemes))
    cost = model.extended_plan_cost(
        extended, scenario_obj.user, scenario_obj.owners
    )
    points.append(AblationPoint(
        query=query_number,
        variant="minimize-visibility",
        total_usd=cost.total_usd,
        encrypted_attributes=len(extended.encrypted_attributes),
        encryption_operations=len(extended.encryption_operations()),
        decryption_operations=len(extended.decryption_operations()),
    ))
    _ = keys
    return points


def assignment_strategy_ablation(query_number: int, scenario_obj: Scenario,
                                 scale: float = 0.1,
                                 strategies: tuple[str, ...] = (
                                     "dp", "greedy"),
                                 ) -> dict[str, float]:
    """Total cost per assignment strategy on one query."""
    schema = build_tpch_schema(scale)
    prices = PriceList.from_subjects(scenario_obj.subjects)
    costs: dict[str, float] = {}
    for strategy in strategies:
        plan = all_queries()[query_number - 1].plan(schema)
        outcome = assign(
            plan, scenario_obj.policy, scenario_obj.subject_names, prices,
            user=scenario_obj.user, owners=scenario_obj.owners,
            strategy=strategy,
        )
        costs[strategy] = outcome.cost.total_usd
    return costs


def mix_split_ablation(query_numbers: tuple[int, ...],
                       scale: float = 0.1) -> dict[str, float]:
    """Cumulative UAPmix cost under prefix vs alternating splits.

    Demonstrates condition 3 (uniform visibility) of Definition 4.1: the
    alternating split gives providers plaintext on one side of most join
    pairs and encrypted on the other, which disqualifies them from the
    joins and erases the savings.
    """
    schema = build_tpch_schema(scale)
    totals: dict[str, float] = {}
    for split in ("prefix", "alternating"):
        scenario_obj = all_scenarios(schema, split)["UAPmix"]
        prices = PriceList.from_subjects(scenario_obj.subjects)
        total = 0.0
        for number in query_numbers:
            plan = all_queries()[number - 1].plan(schema)
            outcome = assign(
                plan, scenario_obj.policy, scenario_obj.subject_names,
                prices, user=scenario_obj.user,
                owners=scenario_obj.owners,
            )
            total += outcome.cost.total_usd
        totals[split] = total
    return totals

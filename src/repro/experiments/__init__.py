"""Experiment harness: regenerates every table and figure of the paper."""

from repro.experiments.ablation import (
    AblationPoint,
    assignment_strategy_ablation,
    mix_split_ablation,
    visibility_ablation,
)
from repro.experiments.economics import (
    EconomicResults,
    QueryScenarioCost,
    run_economics,
    run_query_scenario,
)
from repro.experiments.running_example import (
    RunningExampleResults,
    run_running_example,
)

__all__ = [
    "AblationPoint", "EconomicResults", "QueryScenarioCost",
    "RunningExampleResults", "assignment_strategy_ablation",
    "mix_split_ablation", "run_economics", "run_query_scenario",
    "run_running_example", "visibility_ablation",
]

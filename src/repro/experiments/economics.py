"""The §7 economic evaluation: Figures 9 and 10.

Runs the 22 TPC-H queries under the three authorization scenarios
(UA / UAPenc / UAPmix), assigning operations with the cost-based pipeline
and reporting per-query normalized costs (Figure 9), cumulative costs
(Figure 10), and the headline cumulative savings the paper quotes
(54.2 % for UAPenc, 71.3 % for UAPmix).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.assignment import AssignmentResult, assign
from repro.cost.pricing import PriceList
from repro.exceptions import ReproError
from repro.tpch.queries import all_queries
from repro.tpch.scenarios import SCENARIOS, Scenario, all_scenarios
from repro.tpch.schema import build_tpch_schema

#: Scale factor used by the benchmarks (estimates only; no data needed).
DEFAULT_SCALE = 0.1


@dataclass
class QueryScenarioCost:
    """Cost of one query under one scenario."""

    query: int
    scenario: str
    total_usd: float
    cpu_usd: float
    net_usd: float
    elapsed_seconds: float
    assignees: tuple[str, ...]


@dataclass
class EconomicResults:
    """All figure-9/10 data points plus derived series."""

    scale: float
    mix_split: str
    costs: dict[tuple[int, str], QueryScenarioCost] = field(
        default_factory=dict
    )

    # ------------------------------------------------------------------
    # Derived series
    # ------------------------------------------------------------------
    def cost_of(self, query: int, scenario: str) -> QueryScenarioCost:
        """One data point."""
        try:
            return self.costs[(query, scenario)]
        except KeyError:
            raise ReproError(
                f"no result for Q{query}/{scenario}"
            ) from None

    def normalized(self, query: int, scenario: str) -> float:
        """Figure 9's y-axis: cost normalized to UA for the same query."""
        baseline = self.cost_of(query, "UA").total_usd
        return self.cost_of(query, scenario).total_usd / baseline

    def per_query_rows(self) -> list[tuple[int, float, float, float]]:
        """Figure 9 rows: (query, UA, UAPenc, UAPmix) normalized."""
        return [
            (q, 1.0, self.normalized(q, "UAPenc"),
             self.normalized(q, "UAPmix"))
            for q in sorted({k[0] for k in self.costs})
        ]

    def cumulative_rows(self) -> list[tuple[int, float, float, float]]:
        """Figure 10 rows: running totals normalized to the mean UA cost.

        The paper's figure accumulates normalized per-query costs, so the
        UA series ends at the query count.
        """
        rows = []
        running = {name: 0.0 for name in SCENARIOS}
        for q in sorted({k[0] for k in self.costs}):
            for name in SCENARIOS:
                running[name] += self.normalized(q, name)
            rows.append((q, running["UA"], running["UAPenc"],
                         running["UAPmix"]))
        return rows

    def total_usd(self, scenario: str) -> float:
        """Total (un-normalized) cost of the 22 queries."""
        return sum(
            c.total_usd for (q, s), c in self.costs.items() if s == scenario
        )

    def saving(self, scenario: str) -> float:
        """Cumulative saving vs UA, as a fraction (the §7 headline)."""
        baseline = self.total_usd("UA")
        return 1.0 - self.total_usd(scenario) / baseline

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def figure9_table(self) -> str:
        """Text rendering of Figure 9."""
        lines = ["query   UA  UAPenc  UAPmix"]
        for q, ua, enc, mix in self.per_query_rows():
            lines.append(f"Q{q:<5d} {ua:4.2f}  {enc:6.3f}  {mix:6.3f}")
        return "\n".join(lines)

    def figure10_table(self) -> str:
        """Text rendering of Figure 10 plus the headline savings."""
        lines = ["query  cumUA  cumUAPenc  cumUAPmix"]
        for q, ua, enc, mix in self.cumulative_rows():
            lines.append(f"Q{q:<5d} {ua:6.2f}  {enc:9.3f}  {mix:9.3f}")
        lines.append(
            f"savings vs UA: UAPenc {self.saving('UAPenc'):.1%} "
            f"(paper: 54.2%), UAPmix {self.saving('UAPmix'):.1%} "
            f"(paper: 71.3%)"
        )
        return "\n".join(lines)


def run_query_scenario(query_number: int, scenario_obj: Scenario,
                       scale: float = DEFAULT_SCALE,
                       strategy: str = "dp") -> AssignmentResult:
    """Assign one query under one scenario (shared by benches/tests)."""
    schema = build_tpch_schema(scale)
    plan = all_queries()[query_number - 1].plan(schema)
    prices = PriceList.from_subjects(scenario_obj.subjects)
    return assign(
        plan, scenario_obj.policy, scenario_obj.subject_names, prices,
        user=scenario_obj.user, owners=scenario_obj.owners,
        strategy=strategy,
    )


def run_economics(scale: float = DEFAULT_SCALE,
                  queries: tuple[int, ...] | None = None,
                  mix_split: str = "prefix",
                  strategy: str = "dp") -> EconomicResults:
    """Regenerate the Figure 9/10 data.

    ``queries`` restricts the run (all 22 by default); ``mix_split``
    selects the UAPmix attribute split (see
    :func:`repro.tpch.scenarios.scenario`).
    """
    schema = build_tpch_schema(scale)
    scenarios = all_scenarios(schema, mix_split)
    results = EconomicResults(scale=scale, mix_split=mix_split)
    numbers = queries or tuple(range(1, 23))
    for number in numbers:
        plan_query = all_queries()[number - 1]
        for name, scenario_obj in scenarios.items():
            plan = plan_query.plan(schema)
            prices = PriceList.from_subjects(scenario_obj.subjects)
            outcome = assign(
                plan, scenario_obj.policy, scenario_obj.subject_names,
                prices, user=scenario_obj.user, owners=scenario_obj.owners,
                strategy=strategy,
            )
            results.costs[(number, name)] = QueryScenarioCost(
                query=number,
                scenario=name,
                total_usd=outcome.cost.total_usd,
                cpu_usd=outcome.cost.cpu_usd,
                net_usd=outcome.cost.net_usd,
                elapsed_seconds=outcome.cost.elapsed_seconds,
                assignees=tuple(sorted(set(outcome.assignment.values()))),
            )
    return results

"""Predicates appearing in selections and join conditions.

The paper considers basic conditions of two shapes (§3.1):

* ``a op x`` — an attribute compared with a constant
  (:class:`AttributeValuePredicate`); it adds ``a`` to the *implicit*
  component of the resulting profile;
* ``ai op aj`` — two attributes compared with each other
  (:class:`AttributeComparisonPredicate`); it adds ``{ai, aj}`` to the
  *equivalence* component.

Join conditions are Boolean formulas of basic conditions; we model them as
conjunctions (:class:`Conjunction`), which covers every condition used in
the paper and in TPC-H.

Every predicate also reports which *encryption capability* would allow it
to be evaluated on encrypted values (``EQUALITY`` → deterministic
encryption, ``ORDER`` → OPE, ``NONE`` → plaintext only), which drives the
computation of the plaintext-requirement sets ``Ap`` of Definition 5.2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.exceptions import PlanError


class ComparisonOp(enum.Enum):
    """Comparison operators usable in basic conditions."""

    EQ = "="
    NEQ = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    LIKE = "like"
    IN = "in"

    def __str__(self) -> str:
        return self.value


class EncryptedCapability(enum.Enum):
    """What an encryption scheme must support to evaluate a predicate."""

    #: Evaluable on deterministically encrypted values (equality matching).
    EQUALITY = "equality"
    #: Needs order-preserving encryption (range comparisons).
    ORDER = "order"
    #: Needs additively homomorphic encryption (sums/averages).
    ADDITION = "addition"
    #: Not evaluable on encrypted values at all.
    NONE = "none"


_OP_CAPABILITY = {
    ComparisonOp.EQ: EncryptedCapability.EQUALITY,
    ComparisonOp.NEQ: EncryptedCapability.EQUALITY,
    ComparisonOp.IN: EncryptedCapability.EQUALITY,
    ComparisonOp.LT: EncryptedCapability.ORDER,
    ComparisonOp.LE: EncryptedCapability.ORDER,
    ComparisonOp.GT: EncryptedCapability.ORDER,
    ComparisonOp.GE: EncryptedCapability.ORDER,
    ComparisonOp.LIKE: EncryptedCapability.NONE,
}


class Predicate:
    """Abstract base class for predicates."""

    def attributes(self) -> frozenset[str]:
        """All attributes referenced by the predicate."""
        raise NotImplementedError

    def basic_conditions(self) -> Iterator["Predicate"]:
        """Iterate over the basic (non-composite) conditions."""
        yield self

    def required_capability(self) -> EncryptedCapability:
        """Scheme capability needed to evaluate on encrypted values."""
        raise NotImplementedError


@dataclass(frozen=True)
class AttributeValuePredicate(Predicate):
    """A basic condition ``a op x`` with ``x`` a constant.

    Examples
    --------
    >>> p = AttributeValuePredicate("D", ComparisonOp.EQ, "stroke")
    >>> str(p)
    "D='stroke'"
    """

    attribute: str
    op: ComparisonOp
    value: object

    def attributes(self) -> frozenset[str]:
        return frozenset({self.attribute})

    def required_capability(self) -> EncryptedCapability:
        return _OP_CAPABILITY[self.op]

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"{self.attribute}{self.op}'{self.value}'"
        if isinstance(self.value, (tuple, list, frozenset, set)):
            items = ", ".join(repr(v) for v in self.value)
            return f"{self.attribute} in ({items})"
        return f"{self.attribute}{self.op}{self.value}"


@dataclass(frozen=True)
class AttributeComparisonPredicate(Predicate):
    """A basic condition ``ai op aj`` between two attributes.

    Examples
    --------
    >>> p = AttributeComparisonPredicate("S", ComparisonOp.EQ, "C")
    >>> str(p)
    'S=C'
    """

    left: str
    right: str
    op: ComparisonOp = ComparisonOp.EQ

    def __init__(self, left: str, op: ComparisonOp | str = ComparisonOp.EQ,
                 right: str | None = None) -> None:
        # Accept both (left, op, right) and (left, right) argument orders
        # used historically; normalise to attribute/op/attribute.
        if right is None:
            if isinstance(op, ComparisonOp):
                raise PlanError("comparison predicate needs two attributes")
            left, op, right = left, ComparisonOp.EQ, op
        if isinstance(op, str):
            op = ComparisonOp(op)
        if left == right:
            raise PlanError(f"comparison of attribute {left!r} with itself")
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)
        object.__setattr__(self, "op", op)

    def attributes(self) -> frozenset[str]:
        return frozenset({self.left, self.right})

    def required_capability(self) -> EncryptedCapability:
        return _OP_CAPABILITY[self.op]

    def __str__(self) -> str:
        return f"{self.left}{self.op}{self.right}"


@dataclass(frozen=True)
class Conjunction(Predicate):
    """A conjunction of basic conditions (Boolean formula of §3.1)."""

    predicates: tuple[Predicate, ...]

    def __init__(self, predicates: Sequence[Predicate] | Iterable[Predicate]) -> None:
        flattened: list[Predicate] = []
        for predicate in predicates:
            if isinstance(predicate, Conjunction):
                flattened.extend(predicate.predicates)
            else:
                flattened.append(predicate)
        if not flattened:
            raise PlanError("conjunction must contain at least one predicate")
        object.__setattr__(self, "predicates", tuple(flattened))

    def attributes(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for predicate in self.predicates:
            result |= predicate.attributes()
        return result

    def basic_conditions(self) -> Iterator[Predicate]:
        for predicate in self.predicates:
            yield from predicate.basic_conditions()

    def required_capability(self) -> EncryptedCapability:
        # The strongest requirement among the conjuncts wins; NONE is the
        # absorbing element (one un-evaluable conjunct forces plaintext for
        # its own attributes only, but callers ask per basic condition).
        capabilities = {p.required_capability() for p in self.predicates}
        if EncryptedCapability.NONE in capabilities:
            return EncryptedCapability.NONE
        if EncryptedCapability.ORDER in capabilities:
            return EncryptedCapability.ORDER
        return EncryptedCapability.EQUALITY

    def __str__(self) -> str:
        return " AND ".join(str(p) for p in self.predicates)


def equals(left: str, right: str) -> AttributeComparisonPredicate:
    """Shorthand for the equi-condition ``left = right``."""
    return AttributeComparisonPredicate(left, ComparisonOp.EQ, right)


def value_equals(attribute: str, value: object) -> AttributeValuePredicate:
    """Shorthand for the condition ``attribute = value``."""
    return AttributeValuePredicate(attribute, ComparisonOp.EQ, value)

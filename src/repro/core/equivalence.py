"""Immutable equivalence-class partitions over attribute names.

Section 3.2 of the paper represents the ``R≃`` component of a relation
profile as "a disjoint-set data structure representing the closure of the
equivalence relationship implied by attributes connected in R's
computation".  :class:`EquivalenceClasses` implements exactly that closure
with value semantics: every mutation returns a new instance, so profiles
can be shared freely between plan nodes.

The paper's union notation (its §3.2 "slight abuse of notation") maps to
:meth:`EquivalenceClasses.union_set`:

* ``R≃ ∪ A`` adds ``A`` as a class if no existing class intersects it, and
  otherwise merges every intersecting class together with ``A``;
* ``R≃_i ∪ R≃_j`` (:meth:`merge`) inserts every class of one partition
  into the other.
"""

from __future__ import annotations

from typing import Iterable, Iterator


def _normalize(sets: Iterable[Iterable[str]]) -> frozenset[frozenset[str]]:
    """Closure of an arbitrary family of sets into disjoint classes."""
    pending = [frozenset(s) for s in sets if s]
    classes: list[set[str]] = []
    for candidate in pending:
        merged = set(candidate)
        keep: list[set[str]] = []
        for existing in classes:
            if existing & merged:
                merged |= existing
            else:
                keep.append(existing)
        keep.append(merged)
        classes = keep
    return frozenset(frozenset(c) for c in classes if len(c) > 1)


class EquivalenceClasses:
    """An immutable partition of attributes into equivalence classes.

    Only classes with at least two members are stored; singleton classes
    are implicit (an attribute not appearing in any class is equivalent
    only to itself), matching the paper's profiles where ``R≃`` lists only
    the connected attribute sets.

    Examples
    --------
    >>> eq = EquivalenceClasses.empty().union_set(["S", "C"])
    >>> eq.are_equivalent("S", "C")
    True
    >>> sorted(sorted(c) for c in eq)
    [['C', 'S']]
    """

    __slots__ = ("_classes",)

    def __init__(self, classes: Iterable[Iterable[str]] = ()) -> None:
        self._classes = _normalize(classes)

    @classmethod
    def empty(cls) -> "EquivalenceClasses":
        """The partition with no non-trivial classes."""
        return cls(())

    @classmethod
    def of(cls, *classes: Iterable[str]) -> "EquivalenceClasses":
        """Build a partition from explicit classes (closure is applied)."""
        return cls(classes)

    @property
    def classes(self) -> frozenset[frozenset[str]]:
        """The non-trivial equivalence classes."""
        return self._classes

    def union_set(self, attributes: Iterable[str]) -> "EquivalenceClasses":
        """Return the partition with ``attributes`` made equivalent.

        Implements the paper's ``R≃ ∪ A`` operation: all classes
        intersecting ``attributes`` are merged together with it.
        """
        added = frozenset(attributes)
        if len(added) < 2:
            # A singleton (or empty) set never creates a non-trivial class
            # on its own, but a singleton intersecting an existing class is
            # already in that class, so nothing changes either way.
            if not added:
                return self
            member = next(iter(added))
            if any(member in c for c in self._classes):
                return self
            return self
        return EquivalenceClasses(list(self._classes) + [added])

    def merge(self, other: "EquivalenceClasses") -> "EquivalenceClasses":
        """Return the closure of the union of two partitions (``R≃l ∪ R≃r``)."""
        if not other._classes:
            return self
        if not self._classes:
            return other
        return EquivalenceClasses(list(self._classes) + list(other._classes))

    def class_of(self, attribute: str) -> frozenset[str]:
        """The class containing ``attribute`` (a singleton if unconnected)."""
        for cls_ in self._classes:
            if attribute in cls_:
                return cls_
        return frozenset({attribute})

    def are_equivalent(self, first: str, second: str) -> bool:
        """Whether the two attributes belong to the same class."""
        if first == second:
            return True
        return second in self.class_of(first)

    def members(self) -> frozenset[str]:
        """All attributes appearing in some non-trivial class."""
        result: set[str] = set()
        for cls_ in self._classes:
            result |= cls_
        return frozenset(result)

    def masks(self, universe) -> tuple[int, ...]:
        """Bitmask fast path: one ``int`` mask per class (memoised).

        ``universe`` is an
        :class:`~repro.core.attrsets.AttributeUniverse`; the condition-3
        uniform-visibility check over a class mask ``m`` is then just
        ``m & ~P == 0 or m & ~E == 0``.
        """
        return universe.equivalence_masks(self)

    def restrict(self, attributes: Iterable[str]) -> "EquivalenceClasses":
        """Partition with every class intersected with ``attributes``.

        Not used by the paper's profile rules (equivalences are never
        dropped, per Theorem 3.1) but exposed for analyses and tooling.
        """
        keep = frozenset(attributes)
        return EquivalenceClasses(cls_ & keep for cls_ in self._classes)

    def refines(self, other: "EquivalenceClasses") -> bool:
        """True if every class of ``self`` is contained in a class of ``other``.

        This is the partial order of Theorem 3.1(ii): profiles only coarsen
        going up the plan, i.e. the descendant's partition refines the
        ancestor's.
        """
        return all(
            any(cls_ <= coarser for coarser in other._classes | {frozenset()})
            or len(cls_) <= 1
            for cls_ in self._classes
        )

    def __iter__(self) -> Iterator[frozenset[str]]:
        return iter(self._classes)

    def __len__(self) -> int:
        return len(self._classes)

    def __bool__(self) -> bool:
        return bool(self._classes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EquivalenceClasses):
            return NotImplemented
        return self._classes == other._classes

    def __hash__(self) -> int:
        return hash(self._classes)

    def __repr__(self) -> str:
        if not self._classes:
            return "EquivalenceClasses()"
        body = ", ".join(
            "{" + ",".join(sorted(cls_)) + "}" for cls_ in sorted(
                self._classes, key=lambda c: sorted(c)
            )
        )
        return f"EquivalenceClasses({body})"

"""Relation profiles (Definition 3.1).

A profile is the 5-tuple ``[Rvp, Rve, Rip, Rie, R≃]`` capturing the
informative content of a base or derived relation:

* ``Rvp`` / ``Rve`` — attributes *visible* in the relation schema, in
  plaintext / encrypted form;
* ``Rip`` / ``Rie`` — attributes *implicitly* conveyed by the relation
  (used in selections, group-by, ...), in plaintext / encrypted form;
* ``R≃`` — the closure of the equivalence relationship among attributes
  connected by conditions in the relation's computation.

Profiles are immutable values; the per-operator propagation rules of
Figure 2 live on the plan-node classes in :mod:`repro.core.operators` and
are expressed through the small algebra of methods offered here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.equivalence import EquivalenceClasses
from repro.exceptions import ProfileError


@dataclass(frozen=True)
class RelationProfile:
    """The informative content of a relation (Definition 3.1).

    Examples
    --------
    The profile of a base relation has only visible plaintext attributes:

    >>> p = RelationProfile.for_base_relation(["S", "B", "D", "T"])
    >>> sorted(p.visible_plaintext)
    ['B', 'D', 'S', 'T']
    >>> p.implicit_plaintext
    frozenset()
    """

    visible_plaintext: frozenset[str] = frozenset()
    visible_encrypted: frozenset[str] = frozenset()
    implicit_plaintext: frozenset[str] = frozenset()
    implicit_encrypted: frozenset[str] = frozenset()
    equivalences: EquivalenceClasses = field(default_factory=EquivalenceClasses.empty)

    def __post_init__(self) -> None:
        overlap = self.visible_plaintext & self.visible_encrypted
        if overlap:
            raise ProfileError(
                f"attributes visible both plaintext and encrypted: {sorted(overlap)}"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def for_base_relation(cls, attributes: Iterable[str]) -> "RelationProfile":
        """Profile of a base relation: all attributes visible plaintext.

        Per §3.2, a base relation's profile "has all the elements but Rvp
        empty since it is assumed accessible in plaintext and does not
        carry any implicit content or equivalence relationship".
        """
        return cls(visible_plaintext=frozenset(attributes))

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def visible(self) -> frozenset[str]:
        """All attributes in the relation schema (``Rvp ∪ Rve``)."""
        return self.visible_plaintext | self.visible_encrypted

    @property
    def implicit(self) -> frozenset[str]:
        """All implicitly conveyed attributes (``Rip ∪ Rie``)."""
        return self.implicit_plaintext | self.implicit_encrypted

    @property
    def plaintext(self) -> frozenset[str]:
        """All attributes carried in plaintext form, visible or implicit."""
        return self.visible_plaintext | self.implicit_plaintext

    @property
    def encrypted(self) -> frozenset[str]:
        """All attributes carried in encrypted form, visible or implicit."""
        return self.visible_encrypted | self.implicit_encrypted

    def all_attributes(self) -> frozenset[str]:
        """Every attribute the profile mentions, including equivalence members.

        This is the attribute universe used by Theorem 3.1(i).
        """
        return self.visible | self.implicit | self.equivalences.members()

    def masks(self, universe) -> "object":
        """Bitmask fast path: this profile interned into ``universe``.

        ``universe`` is an
        :class:`~repro.core.attrsets.AttributeUniverse`; returns the
        memoised :class:`~repro.core.attrsets.MaskProfile`, on which
        Definition 4.1/4.2 checks and the Figure 2 algebra are integer
        operations.
        """
        return universe.profile_masks(self)

    # ------------------------------------------------------------------
    # Profile algebra used by the Figure 2 rules
    # ------------------------------------------------------------------
    def project(self, attributes: Iterable[str]) -> "RelationProfile":
        """Fig. 2 projection row: keep only ``attributes`` visible."""
        keep = frozenset(attributes)
        missing = keep - self.visible
        if missing:
            raise ProfileError(
                f"projection on attributes not in schema: {sorted(missing)}"
            )
        return RelationProfile(
            visible_plaintext=self.visible_plaintext & keep,
            visible_encrypted=self.visible_encrypted & keep,
            implicit_plaintext=self.implicit_plaintext,
            implicit_encrypted=self.implicit_encrypted,
            equivalences=self.equivalences,
        )

    def add_implicit(self, attributes: Iterable[str]) -> "RelationProfile":
        """Move ``attributes`` into the implicit component.

        Each attribute joins ``Rip`` or ``Rie`` according to the form in
        which it is currently visible (Fig. 2 selection/group-by rows).
        """
        added = frozenset(attributes)
        unknown = added - self.visible
        if unknown:
            raise ProfileError(
                f"cannot mark non-visible attributes implicit: {sorted(unknown)}"
            )
        return RelationProfile(
            visible_plaintext=self.visible_plaintext,
            visible_encrypted=self.visible_encrypted,
            implicit_plaintext=self.implicit_plaintext
            | (self.visible_plaintext & added),
            implicit_encrypted=self.implicit_encrypted
            | (self.visible_encrypted & added),
            equivalences=self.equivalences,
        )

    def add_equivalence(self, attributes: Iterable[str]) -> "RelationProfile":
        """Insert an equivalence class (``R≃ ∪ A`` in the paper)."""
        return RelationProfile(
            visible_plaintext=self.visible_plaintext,
            visible_encrypted=self.visible_encrypted,
            implicit_plaintext=self.implicit_plaintext,
            implicit_encrypted=self.implicit_encrypted,
            equivalences=self.equivalences.union_set(attributes),
        )

    def combine(self, other: "RelationProfile") -> "RelationProfile":
        """Fig. 2 cartesian-product row: componentwise union."""
        return RelationProfile(
            visible_plaintext=self.visible_plaintext | other.visible_plaintext,
            visible_encrypted=self.visible_encrypted | other.visible_encrypted,
            implicit_plaintext=self.implicit_plaintext | other.implicit_plaintext,
            implicit_encrypted=self.implicit_encrypted | other.implicit_encrypted,
            equivalences=self.equivalences.merge(other.equivalences),
        )

    def encrypt(self, attributes: Iterable[str]) -> "RelationProfile":
        """Fig. 2 encryption row: move visible plaintext → visible encrypted."""
        moved = frozenset(attributes)
        missing = moved - self.visible_plaintext
        if missing:
            raise ProfileError(
                f"cannot encrypt attributes not visible plaintext: {sorted(missing)}"
            )
        return RelationProfile(
            visible_plaintext=self.visible_plaintext - moved,
            visible_encrypted=self.visible_encrypted | moved,
            implicit_plaintext=self.implicit_plaintext,
            implicit_encrypted=self.implicit_encrypted,
            equivalences=self.equivalences,
        )

    def decrypt(self, attributes: Iterable[str]) -> "RelationProfile":
        """Fig. 2 decryption row: move visible encrypted → visible plaintext."""
        moved = frozenset(attributes)
        missing = moved - self.visible_encrypted
        if missing:
            raise ProfileError(
                f"cannot decrypt attributes not visible encrypted: {sorted(missing)}"
            )
        return RelationProfile(
            visible_plaintext=self.visible_plaintext | moved,
            visible_encrypted=self.visible_encrypted - moved,
            implicit_plaintext=self.implicit_plaintext,
            implicit_encrypted=self.implicit_encrypted,
            equivalences=self.equivalences,
        )

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Render the profile in the paper's ``v:/i:/≃:`` tag notation.

        Encrypted attributes are suffixed with ``*`` (the paper renders
        them on a gray background, which plain text cannot).
        """

        def fmt(plain: frozenset[str], enc: frozenset[str]) -> str:
            parts = sorted(plain) + [f"{a}*" for a in sorted(enc)]
            return "".join(parts) if parts else "-"

        eq = (
            ", ".join(
                "{" + ",".join(sorted(c)) + "}"
                for c in sorted(self.equivalences, key=lambda c: sorted(c))
            )
            or "-"
        )
        visible = fmt(self.visible_plaintext, self.visible_encrypted)
        implicit = fmt(self.implicit_plaintext, self.implicit_encrypted)
        return f"v:{visible} i:{implicit} ≃:{eq}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()

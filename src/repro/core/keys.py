"""Query-plan key establishment and distribution (Definition 6.1, §6).

Attributes that appear together in an equivalence set of the root profile
must be encrypted with the same key, so that conditions comparing them in
encrypted form can be evaluated; all remaining encrypted attributes get
their own key.  Keys are distributed only to the subjects in charge of the
corresponding encryption/decryption operations, which — being authorized
for the plaintext of what they encrypt/decrypt — makes the distribution
obey the authorizations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.authorization import Policy
from repro.core.extension import ExtendedPlan
from repro.core.lineage import augment_view, derived_lineage
from repro.core.operators import Decrypt, Encrypt
from repro.core.requirements import (
    EncryptionScheme,
    SchemeCapabilities,
)
from repro.exceptions import KeyManagementError


@dataclass(frozen=True)
class QueryKey:
    """One encryption key, covering a cluster of equivalent attributes.

    The paper writes ``k_A`` for the key of attribute cluster ``A`` (e.g.
    ``kSC`` for the joined pair S, C and ``kP`` for the singleton P).
    """

    attributes: frozenset[str]
    scheme: EncryptionScheme = EncryptionScheme.DETERMINISTIC

    @property
    def name(self) -> str:
        """The paper's ``k<attrs>`` naming, e.g. ``kSC``."""
        return "k" + "".join(sorted(self.attributes))

    def covers(self, attribute: str) -> bool:
        """Whether this key encrypts ``attribute``."""
        return attribute in self.attributes

    def __str__(self) -> str:
        return self.name


@dataclass
class KeyAssignment:
    """The key set ``K_T`` of a plan plus its distribution to subjects."""

    keys: tuple[QueryKey, ...]
    distribution: dict[str, frozenset[QueryKey]] = field(default_factory=dict)

    def key_for(self, attribute: str) -> QueryKey:
        """The key encrypting ``attribute``."""
        for key in self.keys:
            if key.covers(attribute):
                return key
        raise KeyManagementError(f"no key established for {attribute!r}")

    def holders(self, key: QueryKey) -> frozenset[str]:
        """Subjects holding ``key``."""
        return frozenset(
            subject for subject, keys in self.distribution.items()
            if key in keys
        )

    def keys_for_subject(self, subject: str) -> frozenset[QueryKey]:
        """Keys communicated to ``subject`` with its sub-query (§6)."""
        return self.distribution.get(subject, frozenset())

    def describe(self) -> str:
        """Human-readable summary, e.g. ``kSC → H, I``."""
        lines = []
        for key in self.keys:
            holders = ", ".join(sorted(self.holders(key))) or "-"
            lines.append(f"{key.name} ({key.scheme}) → {holders}")
        return "\n".join(lines)


def cluster_encrypted_attributes(
    encrypted: Iterable[str],
    root_equivalences: Iterable[frozenset[str]],
) -> tuple[frozenset[str], ...]:
    """The family ``A`` of Definition 6.1.

    Clusters the encrypted attributes ``Ak`` by the equivalence sets of
    the root profile; attributes in no equivalence set become singletons.

    Examples
    --------
    >>> clusters = cluster_encrypted_attributes(
    ...     {"S", "C", "P"}, [frozenset({"S", "C"})])
    >>> sorted(sorted(c) for c in clusters)
    [['C', 'S'], ['P']]
    """
    remaining = set(encrypted)
    clusters: list[frozenset[str]] = []
    for eq_class in root_equivalences:
        overlap = frozenset(eq_class) & remaining
        if overlap:
            clusters.append(overlap)
            remaining -= overlap
    clusters.extend(frozenset({a}) for a in sorted(remaining))
    return tuple(clusters)


def schemes_for_extended_plan(
    extended: ExtendedPlan,
    capabilities: SchemeCapabilities | None = None,
    policy: Policy | None = None,
) -> dict[str, EncryptionScheme]:
    """Assignment-aware scheme selection (§6, steps 2–3 combined).

    Walks the extended plan and collects, for every encrypted attribute,
    the capabilities actually demanded *on ciphertexts*: an operation
    contributes a demand only when its operand really arrives encrypted
    under the chosen assignment.  Attributes that are encrypted purely in
    transit (nobody computes on them) get randomized encryption — the
    highest protection, and the cheapest.

    When ``policy`` is given, note 2 of §5 is honoured: an assignee that
    is authorized for an attribute's plaintext *and* holds its key (it
    performs an encryption/decryption of that attribute) evaluates the
    condition on plaintext values and encrypts afterwards, so no
    ciphertext capability is demanded.
    """
    from repro.core.requirements import _node_demands  # shared demand rules

    capabilities = capabilities or SchemeCapabilities.all()
    plan = extended.plan
    profiles = plan.profiles()

    key_holders: dict[str, set[str]] = {}
    for node in plan.postorder():
        if isinstance(node, (Encrypt, Decrypt)):
            subject = extended.assignee(node)
            for attribute in node.attributes:
                key_holders.setdefault(attribute, set()).add(subject)

    lineage = derived_lineage(plan) if policy is not None else {}

    def note2_applies(subject: str, attribute: str) -> bool:
        if policy is None:
            return False
        view = augment_view(policy.view(subject), lineage)
        return (attribute in view.plaintext
                and subject in key_holders.get(attribute, ()))

    demands: dict[str, set] = {}
    for node in plan.postorder():
        if node.is_leaf or isinstance(node, (Encrypt, Decrypt)):
            continue
        arriving_encrypted: set[str] = set()
        for child in node.children:
            arriving_encrypted |= profiles[child].visible_encrypted
        subject = extended.assignee(node)
        for attribute, capability in _node_demands(node):
            if attribute in arriving_encrypted \
                    and not note2_applies(subject, attribute):
                demands.setdefault(attribute, set()).add(capability)

    from repro.core.requirements import select_scheme

    schemes: dict[str, EncryptionScheme] = {}
    for attribute in extended.encrypted_attributes:
        needed = frozenset(demands.get(attribute, set()))
        scheme = select_scheme(needed, capabilities)
        schemes[attribute] = scheme or EncryptionScheme.RANDOMIZED
    # Demands can also fall on derived (aliased) outputs that were born
    # encrypted; record them so key clusters unify correctly.
    for attribute, needed in demands.items():
        if attribute not in schemes:
            scheme = select_scheme(frozenset(needed), capabilities)
            schemes[attribute] = scheme or EncryptionScheme.RANDOMIZED
    return schemes


def establish_keys(
    extended: ExtendedPlan,
    policy: Policy | None = None,
    capabilities: SchemeCapabilities | None = None,
    schemes: Mapping[str, EncryptionScheme] | None = None,
) -> KeyAssignment:
    """Compute ``K_T`` and its distribution for an extended plan (Def. 6.1).

    Every attribute cluster gets one key; the scheme attached to a key is
    the one §6's rule selects for its attributes (they must agree within a
    cluster — attributes compared together need the same scheme *and* the
    same key).  The key for a cluster is distributed to the assignees of
    the encryption and decryption operations involving its attributes.

    When ``policy`` is given, distribution is validated: a subject may
    receive a key only if it is authorized for the plaintext of all the
    attributes it encrypts/decrypts with it (key distribution must obey
    authorizations, §6).
    """
    root_profile = extended.plan.root_profile()
    clusters = cluster_encrypted_attributes(
        extended.encrypted_attributes, root_profile.equivalences
    )
    if schemes is None:
        schemes = schemes_for_extended_plan(extended, capabilities)

    keys: list[QueryKey] = []
    for cluster in clusters:
        cluster_schemes = {
            schemes.get(attribute, EncryptionScheme.RANDOMIZED)
            for attribute in cluster
        }
        if len(cluster_schemes) > 1:
            # Equivalent attributes are operated on together; unify on the
            # least-protective member so the shared operations work.
            for candidate in (EncryptionScheme.OPE,
                              EncryptionScheme.DETERMINISTIC,
                              EncryptionScheme.PAILLIER,
                              EncryptionScheme.RANDOMIZED):
                if candidate in cluster_schemes:
                    scheme = candidate
                    break
        else:
            scheme = next(iter(cluster_schemes))
        keys.append(QueryKey(attributes=cluster, scheme=scheme))

    distribution: dict[str, set[QueryKey]] = {}
    for node in extended.plan.postorder():
        if not isinstance(node, (Encrypt, Decrypt)):
            continue
        subject = extended.assignee(node)
        for key, attribute in itertools.product(keys, sorted(node.attributes)):
            if key.covers(attribute):
                distribution.setdefault(subject, set()).add(key)

    assignment = KeyAssignment(
        keys=tuple(keys),
        distribution={
            subject: frozenset(keys_) for subject, keys_ in distribution.items()
        },
    )
    if policy is not None:
        _validate_distribution(extended, policy, assignment)
    return assignment


def _validate_distribution(extended: ExtendedPlan, policy: Policy,
                           assignment: KeyAssignment) -> None:
    """Check that key holders may see the covered attributes in plaintext."""
    lineage = derived_lineage(extended.plan)
    for node in extended.plan.postorder():
        if not isinstance(node, (Encrypt, Decrypt)):
            continue
        subject = extended.assignee(node)
        if subject.startswith("authority:"):
            # Synthetic owner of a base relation: authorized for its own
            # content by definition (§2).
            continue
        view = augment_view(policy.view(subject), lineage)
        unauthorized = frozenset(node.attributes) - view.plaintext
        if unauthorized:
            raise KeyManagementError(
                f"subject {subject} performs "
                f"{'encryption' if isinstance(node, Encrypt) else 'decryption'} "
                f"of {sorted(unauthorized)} without plaintext authorization"
            )

"""Query-plan trees: traversal, profile annotation, and pretty printing.

A :class:`QueryPlan` wraps the root :class:`~repro.core.operators.PlanNode`
of an operator tree and offers the tree-level services that Sections 3–6 of
the paper rely on: post-order visits, parent/ancestor lookup, per-node
profile computation (Figure 3), and structural validation.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterable, Iterator, Mapping, TypeVar

from repro.core.operators import (
    BaseRelationNode,
    Decrypt,
    Encrypt,
    PlanNode,
)
from repro.core.profile import RelationProfile
from repro.exceptions import PlanError

V = TypeVar("V")


class NodeMap(Generic[V]):
    """A node → value mapping keyed by object identity, O(1) per lookup.

    Plan nodes compare by identity, and per-node annotations (profiles,
    assignments, plaintext requirements, candidate sets) must never
    confuse two structurally equal nodes at different plan positions.
    ``NodeMap`` makes that contract explicit and cheap: keys are
    ``id(node)`` with the node kept alive by the map, replacing the
    ``for key, value in mapping.items(): if key is node`` identity scans
    that used to be O(n) per lookup.

    Examples
    --------
    >>> from repro.core.schema import Relation
    >>> leaf = BaseRelationNode(Relation("R", ["a"]))
    >>> m = NodeMap([(leaf, "X")])
    >>> m[leaf]
    'X'
    >>> leaf in m and len(m) == 1
    True
    """

    __slots__ = ("_values", "_nodes")

    def __init__(self, items: Mapping[PlanNode, V]
                 | Iterable[tuple[PlanNode, V]] = ()) -> None:
        self._values: dict[int, V] = {}
        self._nodes: dict[int, PlanNode] = {}
        if isinstance(items, Mapping):
            items = items.items()
        for node, value in items:
            self[node] = value

    def __getitem__(self, node: PlanNode) -> V:
        try:
            return self._values[id(node)]
        except KeyError:
            raise KeyError(node) from None

    def __setitem__(self, node: PlanNode, value: V) -> None:
        self._values[id(node)] = value
        self._nodes[id(node)] = node

    def get(self, node: PlanNode, default: V | None = None) -> V | None:
        """Value for ``node``, or ``default`` when absent."""
        return self._values.get(id(node), default)

    def __contains__(self, node: object) -> bool:
        return isinstance(node, PlanNode) and id(node) in self._values

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[PlanNode]:
        return iter(self._nodes.values())

    def keys(self) -> Iterator[PlanNode]:
        """The nodes, in insertion order."""
        return iter(self._nodes.values())

    def values(self) -> Iterator[V]:
        """The values, in insertion order."""
        return iter(self._values.values())

    def items(self) -> Iterator[tuple[PlanNode, V]]:
        """(node, value) pairs, in insertion order."""
        return zip(self._nodes.values(), self._values.values())


class QueryPlan:
    """An immutable operator tree with cached derived structure.

    Examples
    --------
    >>> from repro.core.schema import Relation
    >>> from repro.core.operators import BaseRelationNode, Projection
    >>> hosp = Relation("Hosp", ["S", "B", "D", "T"])
    >>> plan = QueryPlan(Projection(BaseRelationNode(hosp), ["S", "D"]))
    >>> [n.label() for n in plan.postorder()]
    ['Hosp(S,B,D,T)', 'π[D,S]']
    """

    __slots__ = ("root", "_postorder", "_parents", "_profiles",
                 "_fingerprint")

    def __init__(self, root: PlanNode) -> None:
        self.root = root
        self._postorder: tuple[PlanNode, ...] = tuple(_postorder_walk(root))
        if len({id(n) for n in self._postorder}) != len(self._postorder):
            raise PlanError("plan nodes must not be shared between positions")
        parents: dict[int, PlanNode | None] = {id(root): None}
        for node in self._postorder:
            for child in node.children:
                parents[id(child)] = node
        self._parents = parents
        self._profiles: NodeMap[RelationProfile] | None = None
        self._fingerprint: tuple | None = None

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def postorder(self) -> Iterator[PlanNode]:
        """Visit children before parents (the paper's visit order, §6)."""
        return iter(self._postorder)

    def nodes(self) -> tuple[PlanNode, ...]:
        """All nodes, in post-order."""
        return self._postorder

    def operations(self) -> tuple[PlanNode, ...]:
        """All non-leaf nodes, in post-order."""
        return tuple(n for n in self._postorder if not n.is_leaf)

    def leaves(self) -> tuple[BaseRelationNode, ...]:
        """The base relations of the plan, left to right."""
        return tuple(
            n for n in self._postorder if isinstance(n, BaseRelationNode)
        )

    def parent(self, node: PlanNode) -> PlanNode | None:
        """Parent of ``node``, or ``None`` for the root."""
        try:
            return self._parents[id(node)]
        except KeyError:
            raise PlanError(f"node {node!r} is not part of this plan") from None

    def ancestors(self, node: PlanNode) -> Iterator[PlanNode]:
        """Strict ancestors of ``node``, nearest first."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def is_descendant(self, node: PlanNode, ancestor: PlanNode) -> bool:
        """Whether ``ancestor`` lies on the path from ``node`` to the root."""
        return any(a is ancestor for a in self.ancestors(node))

    def __contains__(self, node: object) -> bool:
        return isinstance(node, PlanNode) and id(node) in self._parents

    def __len__(self) -> int:
        return len(self._postorder)

    # ------------------------------------------------------------------
    # Profiles (Figure 3)
    # ------------------------------------------------------------------
    def profiles(self) -> Mapping[PlanNode, RelationProfile]:
        """Profile of the relation produced by every node (cached).

        The result maps node → profile using identity semantics, mirroring
        the per-node tags of Figure 3.
        """
        if self._profiles is None:
            computed: NodeMap[RelationProfile] = NodeMap()
            for node in self._postorder:
                child_profiles = [computed[c] for c in node.children]
                computed[node] = node.output_profile(*child_profiles)
            self._profiles = computed
        return self._profiles

    def profile(self, node: PlanNode) -> RelationProfile:
        """Profile of the relation produced by ``node``."""
        try:
            return self.profiles()[node]
        except KeyError:
            raise PlanError(f"node {node!r} is not part of this plan") from None

    def root_profile(self) -> RelationProfile:
        """Profile of the query result."""
        return self.profile(self.root)

    # ------------------------------------------------------------------
    # Identification
    # ------------------------------------------------------------------
    def fingerprint(self) -> tuple:
        """A hashable structural fingerprint of the plan (cached).

        Two plans share a fingerprint exactly when they have the same
        shape, the same operator parameters (via :meth:`PlanNode.label`),
        and leaves over relations with the same name, cardinality, and
        per-attribute statistics — i.e. when the assignment pipeline
        would treat them identically.  Used as (part of) the key of the
        policy-versioned assignment cache
        (:class:`repro.core.plancache.AssignmentCache`).
        """
        if self._fingerprint is None:
            parts = []
            for node in self._postorder:
                if isinstance(node, BaseRelationNode):
                    relation = node.relation
                    stats = tuple(
                        (name, relation.spec(name).width,
                         relation.spec(name).distinct_fraction)
                        for name in sorted(node.projection)
                    )
                    parts.append(("leaf", relation.name,
                                  relation.cardinality, stats))
                else:
                    parts.append((type(node).__name__, node.label(),
                                  len(node.children)))
            self._fingerprint = tuple(parts)
        return self._fingerprint

    # ------------------------------------------------------------------
    # Rewriting
    # ------------------------------------------------------------------
    def rewrite(self, transform: Callable[[PlanNode, tuple[PlanNode, ...]],
                                          PlanNode]) -> "QueryPlan":
        """Rebuild the tree bottom-up through ``transform``.

        ``transform`` receives each original node together with its already
        rewritten children and returns the node to use in the new tree
        (typically ``node.with_children(children)`` possibly wrapped in
        :class:`~repro.core.operators.Encrypt` / ``Decrypt`` nodes).
        """
        rebuilt: dict[int, PlanNode] = {}
        for node in self._postorder:
            children = tuple(rebuilt[id(c)] for c in node.children)
            rebuilt[id(node)] = transform(node, children)
        return QueryPlan(rebuilt[id(self.root)])

    def strip_crypto_nodes(self) -> "QueryPlan":
        """Remove all Encrypt/Decrypt nodes, recovering the original plan."""

        def strip(node: PlanNode, children: tuple[PlanNode, ...]) -> PlanNode:
            if isinstance(node, (Encrypt, Decrypt)):
                return children[0]
            return node.with_children(children) if children else \
                node.with_children(())

        return self.rewrite(strip)

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def pretty(self, annotations: Mapping[PlanNode, str] | None = None) -> str:
        """Indented rendering of the tree, with optional per-node notes."""
        lines: list[str] = []

        def visit(node: PlanNode, depth: int) -> None:
            note = ""
            if annotations is not None:
                extra = _identity_get(annotations, node)
                if extra:
                    note = f"    -- {extra}"
            lines.append("  " * depth + node.label() + note)
            for child in node.children:
                visit(child, depth + 1)

        visit(self.root, 0)
        return "\n".join(lines)

    def describe_profiles(self) -> str:
        """The tree annotated with each node's profile tag (Figure 3)."""
        profiles = self.profiles()
        return self.pretty({n: profiles[n].describe() for n in self.nodes()})


def _identity_get(mapping: Mapping[PlanNode, str] | NodeMap[str],
                  node: PlanNode) -> str | None:
    """Fetch a per-node annotation (nodes hash by identity, so O(1))."""
    return mapping.get(node)


def _postorder_walk(root: PlanNode) -> Iterator[PlanNode]:
    """Iterative post-order traversal (avoids recursion limits)."""
    stack: list[tuple[PlanNode, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            yield node
        else:
            stack.append((node, True))
            for child in reversed(node.children):
                stack.append((child, False))

"""Lineage of derived attributes (aggregate aliases).

The paper's model names every aggregate output after its source attribute
(``avg(P)`` is still ``P``), so authorizations always resolve.  With the
renaming extension (footnote 1 of the paper; :class:`Aggregate.alias`),
plans can introduce *derived* attribute names unknown to the policy.
Semantically a derived attribute carries exactly the information of its
source — the profile rules make the two equivalent — so a subject's
authorization on the source extends to the derived name.

This module computes the alias → source lineage of a plan and *augments*
subject views accordingly: a derived attribute joins ``P_S`` (``E_S``)
whenever its transitive source is there.  ``count(*)`` outputs have no
source attribute; the model does not track group cardinalities (§3.2
keeps only the grouping attributes for ``count(*)``), so they are treated
as unrestricted.
"""

from __future__ import annotations

from repro.core.authorization import SubjectView
from repro.core.operators import GroupBy, PlanNode
from repro.core.plan import QueryPlan

#: alias name → source attribute name (``None`` for count(*) outputs).
Lineage = dict[str, str | None]


def derived_lineage(plan: QueryPlan | PlanNode) -> Lineage:
    """Collect the alias → source mapping of every derived attribute.

    Transitive aliases (an aggregate over a lower aggregate's alias) are
    resolved down to base attributes.
    """
    nodes = plan.postorder() if isinstance(plan, QueryPlan) \
        else _walk(plan)
    lineage: Lineage = {}
    for node in nodes:
        if not isinstance(node, GroupBy):
            continue
        for aggregate in node.aggregates:
            name = aggregate.output_name
            if aggregate.attribute is None:
                lineage[name] = None
            elif name != aggregate.attribute:
                lineage[name] = aggregate.attribute
    # Resolve chains alias → alias → base.
    resolved: Lineage = {}
    for name in lineage:
        source = lineage[name]
        seen = {name}
        while source is not None and source in lineage \
                and source not in seen:
            seen.add(source)
            source = lineage[source]
        resolved[name] = source
    return resolved


def augment_view(view: SubjectView, lineage: Lineage) -> SubjectView:
    """Extend a subject view to cover derived attributes.

    A derived attribute is plaintext-visible (encrypted-visible) to the
    subject iff its source is; sourceless derived attributes (counts) are
    plaintext-visible to everyone.
    """
    if not lineage:
        return view
    plaintext = set(view.plaintext)
    encrypted = set(view.encrypted)
    for name, source in lineage.items():
        if source is None:
            plaintext.add(name)
        elif source in view.plaintext:
            plaintext.add(name)
        elif source in view.encrypted:
            encrypted.add(name)
    return SubjectView(
        subject=view.subject,
        plaintext=frozenset(plaintext),
        encrypted=frozenset(encrypted),
    )


def _walk(node: PlanNode):
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(current.children)

"""Core implementation of the paper's authorization model (Sections 2–6).

Re-exports the main types so that ``repro.core`` is a convenient façade:
schemas and relations, authorizations and policies, relation profiles,
plan operators, candidate computation, minimal plan extension, key
establishment, and the authorized-visibility checks.
"""

from repro.core.attrsets import (
    AttributeUniverse,
    MaskProfile,
    MaskView,
    assignee_authorized,
    relation_authorized,
)
from repro.core.authorization import (
    ANY,
    Authorization,
    Policy,
    Subject,
    SubjectKind,
    SubjectView,
)
from repro.core.budget import (
    CancellationToken,
    QueryBudget,
    active_token,
    token_scope,
)
from repro.core.candidates import (
    CandidateAssignment,
    MinimumViewProfiles,
    compute_candidates,
    minimum_required_view,
    minimum_view_profiles,
    user_can_receive_result,
)
from repro.core.equivalence import EquivalenceClasses
from repro.core.extension import (
    ExtendedPlan,
    extension_encrypted_attributes,
    minimally_extend,
)
from repro.core.keys import (
    KeyAssignment,
    QueryKey,
    cluster_encrypted_attributes,
    establish_keys,
)
from repro.core.operators import (
    Aggregate,
    AggregateFunction,
    BaseRelationNode,
    CartesianProduct,
    Decrypt,
    Encrypt,
    GroupBy,
    Join,
    PlanNode,
    Projection,
    Selection,
    Udf,
)
from repro.core.plan import NodeMap, QueryPlan
from repro.core.plancache import AssignmentCache
from repro.core.predicates import (
    AttributeComparisonPredicate,
    AttributeValuePredicate,
    ComparisonOp,
    Conjunction,
    EncryptedCapability,
    Predicate,
    equals,
    value_equals,
)
from repro.core.profile import RelationProfile
from repro.core.requirements import (
    EncryptionScheme,
    SchemeCapabilities,
    chosen_schemes,
    infer_plaintext_requirements,
    select_scheme,
)
from repro.core.schema import (
    AttributeSpec,
    DATE,
    DECIMAL,
    INTEGER,
    Relation,
    Schema,
    VARCHAR,
)
from repro.core.visibility import (
    AuthorizationCheck,
    authorized_assignees,
    check_assignee,
    check_relation,
    is_authorized_assignee,
    is_authorized_for_relation,
    require_authorized,
    verify_assignment,
)

__all__ = [
    "ANY", "Aggregate", "AggregateFunction", "AssignmentCache",
    "AttributeUniverse", "Authorization",
    "AuthorizationCheck", "AttributeComparisonPredicate",
    "AttributeValuePredicate", "AttributeSpec", "BaseRelationNode",
    "CancellationToken", "CandidateAssignment", "CartesianProduct",
    "ComparisonOp",
    "Conjunction", "DATE", "DECIMAL", "Decrypt", "Encrypt",
    "EncryptedCapability", "EncryptionScheme", "EquivalenceClasses",
    "ExtendedPlan", "GroupBy", "INTEGER", "Join", "KeyAssignment",
    "MaskProfile", "MaskView", "MinimumViewProfiles", "NodeMap",
    "PlanNode", "Policy", "Predicate",
    "Projection", "QueryBudget", "QueryKey", "QueryPlan", "Relation",
    "RelationProfile",
    "Schema", "SchemeCapabilities", "Selection", "Subject", "SubjectKind",
    "SubjectView", "Udf", "VARCHAR", "assignee_authorized",
    "authorized_assignees",
    "active_token", "check_assignee", "check_relation", "chosen_schemes",
    "cluster_encrypted_attributes", "compute_candidates", "equals",
    "establish_keys", "extension_encrypted_attributes",
    "infer_plaintext_requirements", "is_authorized_assignee",
    "is_authorized_for_relation", "minimally_extend",
    "minimum_required_view", "minimum_view_profiles",
    "relation_authorized", "require_authorized",
    "select_scheme", "token_scope", "user_can_receive_result",
    "value_equals", "verify_assignment",
]

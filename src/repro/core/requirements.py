"""Plaintext-requirement sets ``Ap`` and encryption-scheme selection (§5–6).

Section 5 of the paper assumes that, for every operation, the query
optimizer specifies the set ``Ap`` of operand attributes that must be
available *in plaintext* because no available encryption scheme supports
the operation ("for operations that are not supported by cryptographic
techniques ... we assume the optimizer to specify the need for maintaining
data in plaintext").  Section 6 describes the scheme-selection rule: each
attribute gets the scheme providing the highest protection while still
supporting the operations executed on its encrypted values.

This module implements that optimizer logic:

* :class:`SchemeCapabilities` — which scheme families the deployment
  offers (the paper's tool uses randomized + deterministic symmetric
  encryption, Paillier, and an OPE scheme);
* :func:`select_scheme` — the highest-protection scheme supporting a set
  of required capabilities, if any;
* :func:`infer_plaintext_requirements` — compute ``Ap`` for every node of
  a plan, tracking attribute *instances*: an aggregate or udf output is a
  new instance whose encrypted form only supports what its producing
  operation left possible (e.g., a Paillier-encrypted ``avg(P)`` supports
  further additions but not range comparisons, which is why the final
  selection of the running example needs ``avg(P)`` in plaintext).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping

from repro.core.operators import (
    AggregateFunction,
    GroupBy,
    Join,
    PlanNode,
    Selection,
    Udf,
)
from repro.core.plan import QueryPlan
from repro.core.predicates import (
    AttributeComparisonPredicate,
    EncryptedCapability,
)


class EncryptionScheme(enum.Enum):
    """The four scheme families of the paper's tool (§7), by protection.

    Protection decreases down the list: randomized reveals nothing,
    Paillier is randomized but additively malleable, deterministic leaks
    equality, OPE leaks order.
    """

    RANDOMIZED = "randomized"
    PAILLIER = "paillier"
    DETERMINISTIC = "deterministic"
    OPE = "ope"

    def __str__(self) -> str:
        return self.value


#: Capabilities each scheme supports on ciphertexts.
SCHEME_CAPABILITIES: Mapping[EncryptionScheme, frozenset[EncryptedCapability]] = {
    EncryptionScheme.RANDOMIZED: frozenset(),
    EncryptionScheme.PAILLIER: frozenset({EncryptedCapability.ADDITION}),
    EncryptionScheme.DETERMINISTIC: frozenset({EncryptedCapability.EQUALITY}),
    EncryptionScheme.OPE: frozenset(
        {EncryptedCapability.EQUALITY, EncryptedCapability.ORDER}
    ),
}

#: Scheme preference, highest protection first (§6).
_PROTECTION_ORDER = (
    EncryptionScheme.RANDOMIZED,
    EncryptionScheme.PAILLIER,
    EncryptionScheme.DETERMINISTIC,
    EncryptionScheme.OPE,
)


@dataclass(frozen=True)
class SchemeCapabilities:
    """Which encryption-scheme families are available to the deployment."""

    deterministic: bool = True
    ope: bool = True
    paillier: bool = True

    def available(self) -> tuple[EncryptionScheme, ...]:
        """Available schemes in decreasing-protection order."""
        schemes = [EncryptionScheme.RANDOMIZED]
        if self.paillier:
            schemes.append(EncryptionScheme.PAILLIER)
        if self.deterministic:
            schemes.append(EncryptionScheme.DETERMINISTIC)
        if self.ope:
            schemes.append(EncryptionScheme.OPE)
        return tuple(s for s in _PROTECTION_ORDER if s in schemes)

    @classmethod
    def all(cls) -> "SchemeCapabilities":
        """The paper's configuration: all four families available."""
        return cls()

    @classmethod
    def none(cls) -> "SchemeCapabilities":
        """Only randomized encryption: no computation on ciphertexts."""
        return cls(deterministic=False, ope=False, paillier=False)


def select_scheme(required: frozenset[EncryptedCapability],
                  capabilities: SchemeCapabilities | None = None,
                  ) -> EncryptionScheme | None:
    """Highest-protection available scheme supporting ``required``.

    Returns ``None`` when no single scheme supports all the required
    capabilities (e.g., addition together with order), in which case the
    attribute must stay plaintext for some operations.

    Examples
    --------
    >>> select_scheme(frozenset()) is EncryptionScheme.RANDOMIZED
    True
    >>> select_scheme(frozenset({EncryptedCapability.EQUALITY}))
    <EncryptionScheme.DETERMINISTIC: 'deterministic'>
    """
    if EncryptedCapability.NONE in required:
        return None
    capabilities = capabilities or SchemeCapabilities.all()
    for scheme in capabilities.available():
        if required <= SCHEME_CAPABILITIES[scheme]:
            return scheme
    return None


#: An attribute instance: the attribute name plus the id of the node that
#: created its values (base relation, group-by, or udf node).
_Instance = tuple[str, int]


def _instance_maps(plan: QueryPlan) -> dict[int, dict[str, _Instance]]:
    """For every node, map each visible attribute to its instance."""
    instances: dict[int, dict[str, _Instance]] = {}
    attrs: dict[int, frozenset[str]] = {}
    for node in plan.postorder():
        child_attrs = [attrs[id(c)] for c in node.children]
        attrs[id(node)] = node.output_attributes(*child_attrs)
        current: dict[str, _Instance] = {}
        for child in node.children:
            current.update(instances[id(child)])
        if node.is_leaf:
            current = {a: (a, id(node)) for a in attrs[id(node)]}
        elif isinstance(node, GroupBy):
            for aggregate in node.aggregates:
                name = aggregate.output_name
                current[name] = (name, id(node))
        elif isinstance(node, Udf):
            current[node.output] = (node.output, id(node))
        # Restrict to the attributes actually visible at this node.
        instances[id(node)] = {
            a: inst for a, inst in current.items() if a in attrs[id(node)]
        }
    return instances


def _aggregate_born_capabilities(
    function: AggregateFunction,
) -> frozenset[EncryptedCapability] | None:
    if function in (AggregateFunction.SUM, AggregateFunction.AVG):
        # Aggregating Paillier ciphertexts yields Paillier ciphertexts.
        return frozenset({EncryptedCapability.ADDITION})
    if function in (AggregateFunction.MIN, AggregateFunction.MAX):
        # Min/max over OPE ciphertexts yields OPE ciphertexts.
        return frozenset(
            {EncryptedCapability.EQUALITY, EncryptedCapability.ORDER}
        )
    return None  # count(*) outputs are computed, not decrypted values


def _born_capabilities(
    node: PlanNode, attribute: str,
) -> frozenset[EncryptedCapability] | None:
    """Capabilities an instance *born encrypted* at ``node`` supports.

    ``None`` means the instance is freely re-encryptable (a base-relation
    attribute, or the output of a plaintext-only udf, whose values exist
    in plaintext before any encryption is chosen).
    """
    if isinstance(node, GroupBy):
        for aggregate in node.aggregates:
            if aggregate.output_name == attribute:
                return _aggregate_born_capabilities(aggregate.function)
        return None
    if isinstance(node, Udf) and attribute == node.output:
        if node.encrypted_capable:
            # Assume a deterministic encrypted-execution variant.
            return frozenset({EncryptedCapability.EQUALITY})
        return None
    return None


def _node_demands(node: PlanNode) -> list[tuple[str, EncryptedCapability]]:
    """(attribute, capability) pairs the operation demands of its operands."""
    demands: list[tuple[str, EncryptedCapability]] = []
    if isinstance(node, Selection):
        for basic in node.predicate.basic_conditions():
            capability = basic.required_capability()
            for attribute in basic.attributes():
                demands.append((attribute, capability))
    elif isinstance(node, Join):
        for basic in node.condition.basic_conditions():
            capability = basic.required_capability()
            for attribute in basic.attributes():
                demands.append((attribute, capability))
    elif isinstance(node, GroupBy):
        for attribute in node.group_attributes:
            demands.append((attribute, EncryptedCapability.EQUALITY))
        for aggregate in node.aggregates:
            if aggregate.attribute is not None:
                demands.append(
                    (aggregate.attribute, aggregate.required_capability())
                )
    elif isinstance(node, Udf):
        capability = node.required_capability()
        for attribute in node.inputs:
            demands.append((attribute, capability))
    return demands


def infer_plaintext_requirements(
    plan: QueryPlan,
    capabilities: SchemeCapabilities | None = None,
    overrides: Mapping[PlanNode, frozenset[str]] | None = None,
) -> dict[PlanNode, frozenset[str]]:
    """Compute the ``Ap`` set of every operation of ``plan``.

    The algorithm mirrors §6's scheme selection.  For every attribute
    instance it accumulates, in plan order, the capabilities demanded by
    the operations touching it.  A demand is *encryptable* when a single
    available scheme supports it together with all previously accepted
    demands on the same instance (and, for instances born encrypted at an
    aggregate/udf, when the producing operation's output supports it).
    Demands that are not encryptable put the attribute in the requiring
    node's ``Ap``; for attribute-comparison conditions, both sides are
    required plaintext together, preserving the uniform-visibility rule.

    ``overrides`` lets callers force extra plaintext requirements per node
    (the paper's optimizer may do so for any reason, e.g. unsupported
    operator variants).
    """
    capabilities = capabilities or SchemeCapabilities.all()
    instances = _instance_maps(plan)
    born: dict[_Instance, frozenset[EncryptedCapability] | None] = {}
    for node in plan.postorder():
        for attribute, instance in instances[id(node)].items():
            if instance not in born and instance[1] == id(node):
                born[instance] = _born_capabilities(node, attribute)

    accepted: dict[_Instance, set[EncryptedCapability]] = {}
    requirements: dict[PlanNode, set[str]] = {
        node: set() for node in plan.operations()
    }

    for node in plan.operations():
        # Demands read the operand instances, i.e. the instance maps of
        # the children (for group-by, the aggregate input instance).
        operand_instances: dict[str, _Instance] = {}
        for child in node.children:
            operand_instances.update(instances[id(child)])

        rejected_attrs: set[str] = set()
        for attribute, capability in _node_demands(node):
            instance = operand_instances.get(attribute)
            if instance is None:
                continue
            if capability is EncryptedCapability.NONE:
                rejected_attrs.add(attribute)
                continue
            fixed = born.get(instance)
            if fixed is not None and capability not in fixed:
                rejected_attrs.add(attribute)
                continue
            pinned = accepted.setdefault(instance, set())
            if select_scheme(frozenset(pinned | {capability}),
                             capabilities) is None:
                rejected_attrs.add(attribute)
            else:
                pinned.add(capability)

        # Comparisons require both sides in the same form: if either side
        # of a basic condition was rejected, require both in plaintext.
        if isinstance(node, (Selection, Join)):
            predicate = node.predicate if isinstance(node, Selection) \
                else node.condition
            for basic in predicate.basic_conditions():
                if isinstance(basic, AttributeComparisonPredicate) and (
                        basic.left in rejected_attrs
                        or basic.right in rejected_attrs):
                    rejected_attrs |= {basic.left, basic.right}

        requirements[node] |= rejected_attrs
        if overrides is not None:
            for key, extra in overrides.items():
                if key is node:
                    requirements[node] |= set(extra)

    return {node: frozenset(ap) for node, ap in requirements.items()}


def chosen_schemes(plan: QueryPlan,
                   capabilities: SchemeCapabilities | None = None,
                   ) -> dict[str, EncryptionScheme]:
    """The scheme §6 would pick for each base attribute of ``plan``.

    Uses the accumulated capability demands of the plan; attributes with
    no encrypted-evaluation demand get randomized encryption (highest
    protection).  Attribute instances born at aggregates/udfs are keyed by
    their attribute name only when unambiguous.
    """
    capabilities = capabilities or SchemeCapabilities.all()
    instances = _instance_maps(plan)
    demands: dict[_Instance, set[EncryptedCapability]] = {}
    requirements = infer_plaintext_requirements(plan, capabilities)
    for node in plan.operations():
        operand_instances: dict[str, _Instance] = {}
        for child in node.children:
            operand_instances.update(instances[id(child)])
        plaintext_needed = requirements[node]
        for attribute, capability in _node_demands(node):
            if attribute in plaintext_needed:
                continue
            instance = operand_instances.get(attribute)
            if instance is not None \
                    and capability is not EncryptedCapability.NONE:
                demands.setdefault(instance, set()).add(capability)

    result: dict[str, EncryptionScheme] = {}
    for instance, needed in demands.items():
        scheme = select_scheme(frozenset(needed), capabilities)
        if scheme is not None:
            result[instance[0]] = scheme
    # Attributes never touched by an encrypted demand: randomized.
    for node in plan.leaves():
        for attribute in node.relation.attribute_names:
            result.setdefault(attribute, EncryptionScheme.RANDOMIZED)
    return result

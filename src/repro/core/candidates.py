"""Minimum required views and assignment candidates (Definitions 5.2–5.3).

The *minimum required view* over an operand (Def. 5.2) is the operand with
every visible attribute encrypted except those the operation needs in
plaintext (``Ap``).  A subject is a *candidate* for an operation (Def. 5.3)
when it is an authorized assignee over the minimum required views — i.e.
when on-the-fly encryption could protect the operands enough for that
subject without breaking the operation.

Following Figure 6, the node profiles used here are computed *recursively*
assuming every operand of every operation is replaced by its minimum
required view: the candidate computation explores the most-encrypted
execution compatible with the operation requirements, which by Theorem 5.2
captures exactly the assignments that some extended plan can authorize.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.attrsets import (
    AttributeUniverse,
    assignee_authorized,
    deltas_touch_masked,
    relation_authorized,
)
from repro.core.authorization import Policy, Subject, SubjectView
from repro.core.lineage import augment_view, derived_lineage
from repro.core.operators import PlanNode
from repro.core.plan import NodeMap, QueryPlan
from repro.core.profile import RelationProfile
from repro.core.requirements import (
    SchemeCapabilities,
    infer_plaintext_requirements,
)
from repro.exceptions import NoCandidateError, PlanError


def minimum_required_view(profile: RelationProfile,
                          plaintext_needed: Iterable[str]) -> RelationProfile:
    """Definition 5.2 applied to a profile.

    ``R̄y = decrypt(Ap, encrypt(Rvp_y \\ Ap, Ry))`` — encrypt every visible
    plaintext attribute the operation does not need in plaintext, and
    decrypt the needed ones that are currently encrypted.
    """
    needed = frozenset(plaintext_needed)
    encrypted = profile.encrypt(profile.visible_plaintext - needed)
    return encrypted.decrypt(needed & encrypted.visible_encrypted)


@dataclass(frozen=True)
class MinimumViewProfiles:
    """Profiles of the fully-encrypted (minimum-view) execution of a plan.

    ``results`` maps every node to the profile of the relation it produces
    in the recursive minimum-view computation; ``operand_views`` maps every
    operation to the minimum required views over its operands (the dotted
    boxes of Figure 6).
    """

    plan: QueryPlan
    requirements: Mapping[PlanNode, frozenset[str]]
    results: Mapping[int, RelationProfile]
    operand_views: Mapping[int, tuple[RelationProfile, ...]]

    def result_profile(self, node: PlanNode) -> RelationProfile:
        """Minimum-view profile of the relation produced by ``node``."""
        try:
            return self.results[id(node)]
        except KeyError:
            raise PlanError(f"node {node!r} not in plan") from None

    def views_for(self, node: PlanNode) -> tuple[RelationProfile, ...]:
        """Minimum required views over the operands of ``node``."""
        try:
            return self.operand_views[id(node)]
        except KeyError:
            raise PlanError(f"node {node!r} not in plan") from None


def minimum_view_profiles(
    plan: QueryPlan,
    requirements: Mapping[PlanNode, frozenset[str]] | None = None,
    capabilities: SchemeCapabilities | None = None,
) -> MinimumViewProfiles:
    """Compute the recursive minimum-view profiles of ``plan`` (Figure 6).

    ``requirements`` is the per-node ``Ap`` mapping; when omitted it is
    inferred from the available scheme capabilities
    (:func:`~repro.core.requirements.infer_plaintext_requirements`).
    """
    if requirements is None:
        requirements = infer_plaintext_requirements(plan, capabilities)
    requirement_map: NodeMap[frozenset[str]] = NodeMap(requirements)

    def plaintext_needed(node: PlanNode) -> frozenset[str]:
        return requirement_map.get(node, frozenset())

    results: dict[int, RelationProfile] = {}
    operand_views: dict[int, tuple[RelationProfile, ...]] = {}
    for node in plan.postorder():
        if node.is_leaf:
            results[id(node)] = node.output_profile()
            continue
        needed = plaintext_needed(node)
        views = tuple(
            minimum_required_view(results[id(child)], needed)
            for child in node.children
        )
        operand_views[id(node)] = views
        results[id(node)] = node.output_profile(*views)
    return MinimumViewProfiles(
        plan=plan,
        requirements=requirements,
        results=results,
        operand_views=operand_views,
    )


class CandidateAssignment:
    """The candidate assignment function Λ of Definition 5.3.

    Maps every operation of the plan to the set of subject names that can
    be made authorized assignees by inserting encryption/decryption
    operations (Theorem 5.2).
    """

    def __init__(self, plan: QueryPlan,
                 candidates: dict[int, frozenset[str]],
                 min_views: MinimumViewProfiles) -> None:
        self._plan = plan
        self._candidates = candidates
        self.min_views = min_views

    @property
    def plan(self) -> QueryPlan:
        """The analysed query plan."""
        return self._plan

    def candidates(self, node: PlanNode) -> frozenset[str]:
        """Candidate subjects for ``node`` (Λ(n))."""
        try:
            return self._candidates[id(node)]
        except KeyError:
            raise PlanError(
                f"node {node!r} is not an operation of this plan"
            ) from None

    def __getitem__(self, node: PlanNode) -> frozenset[str]:
        return self.candidates(node)

    def items(self) -> list[tuple[PlanNode, frozenset[str]]]:
        """(operation, candidate set) pairs in post-order."""
        return [
            (node, self._candidates[id(node)])
            for node in self._plan.operations()
        ]

    def require_nonempty(self) -> None:
        """Raise :class:`NoCandidateError` if some operation has none."""
        for node, names in self.items():
            if not names:
                raise NoCandidateError(
                    f"no subject is a candidate for operation {node.label()}",
                    node=node,
                )

    def describe(self) -> str:
        """Tree rendering with candidate sets (left-hand labels of Fig. 6)."""
        return self._plan.pretty({
            node: "Λ=" + ("{" + ",".join(sorted(names)) + "}" if names else "∅")
            for node, names in self.items()
        })


def compute_candidates(
    plan: QueryPlan,
    policy: Policy,
    subjects: Iterable[Subject | str],
    requirements: Mapping[PlanNode, frozenset[str]] | None = None,
    capabilities: SchemeCapabilities | None = None,
) -> CandidateAssignment:
    """Compute Λ for every operation of ``plan`` (Definition 5.3).

    ``subjects`` is the universe of subjects considered for assignment
    (users, authorities, providers).  A subject is a candidate for an
    operation when Definition 4.2 holds over the minimum required views of
    the operands and the resulting minimum-view profile.
    """
    min_views = minimum_view_profiles(plan, requirements, capabilities)
    lineage = derived_lineage(plan)
    universe = AttributeUniverse()
    views: list[SubjectView] = [
        augment_view(
            policy.view(s.name if isinstance(s, Subject) else s), lineage
        )
        for s in subjects
    ]
    # Definition 4.2 over the minimum views, mask-backed: profiles and
    # views are interned once, so the subject × node loop is a handful
    # of integer subset tests per check instead of frozenset algebra.
    view_masks = [(view.subject, view.masks(universe)) for view in views]
    candidates: dict[int, frozenset[str]] = {}
    for node in plan.operations():
        operand_masks = tuple(
            profile.masks(universe) for profile in min_views.views_for(node)
        )
        result_masks = min_views.result_profile(node).masks(universe)
        candidates[id(node)] = frozenset(
            subject for subject, masks in view_masks
            if assignee_authorized(masks, operand_masks, result_masks)
        )
    return CandidateAssignment(plan, candidates, min_views)


class IncrementalCandidates:
    """Λ maintained incrementally across policy grant/revoke deltas.

    The minimum-view profiles of Definition 5.2/5.3 depend only on the
    plan and its ``Ap`` requirements — never on the policy — so they are
    computed once per plan.  Per subject the class keeps one bitmask row
    over the plan's operations (bit *i* set ⟺ the subject is a candidate
    for the *i*-th operation in post-order).  When the policy moves, the
    delta journal tells which subjects' views over the plan's attributes
    may have changed; only *their* rows are re-evaluated against the
    precomputed per-node mask profiles — a handful of Definition 4.2
    checks per touched subject instead of the full subject × node sweep
    of :func:`compute_candidates`.

    A truncated journal (``deltas_since`` returning ``None``) falls back
    to refreshing every row, so the class is exactly equivalent to a
    from-scratch recompute at every version — the property tests in
    ``tests/properties/test_policy_deltas.py`` pin this bit-for-bit.
    Conservativeness note: a subject row is refreshed whenever a delta
    *may* touch it (subject match and attribute-mask intersection with
    the plan's footprint); refreshing recomputes from the live policy,
    so under-invalidation is impossible by construction.
    """

    def __init__(self, plan: QueryPlan, policy: Policy,
                 subjects: Iterable[Subject | str],
                 requirements: Mapping[PlanNode, frozenset[str]] | None = None,
                 capabilities: SchemeCapabilities | None = None) -> None:
        self.plan = plan
        self.policy = policy
        self.subject_names = [
            s.name if isinstance(s, Subject) else s for s in subjects
        ]
        self.min_views = minimum_view_profiles(plan, requirements,
                                               capabilities)
        self._lineage = derived_lineage(plan)
        self.universe = AttributeUniverse()
        self._operations = plan.operations()
        self._node_masks = []
        for node in self._operations:
            operand_masks = tuple(
                profile.masks(self.universe)
                for profile in self.min_views.views_for(node)
            )
            result_masks = self.min_views.result_profile(node).masks(
                self.universe)
            self._node_masks.append((operand_masks, result_masks))
        attributes: set[str] = set()
        for leaf in plan.leaves():
            attributes |= leaf.relation.attribute_set
        attributes.update(self._lineage)
        self._attr_mask = self.universe.mask(attributes)
        self.stats = {
            "full_refreshes": 0,
            "subject_refreshes": 0,
            "subjects_kept": 0,
        }
        self._version = policy.version
        self._rows: dict[str, int] = {
            name: self._subject_row(name) for name in self.subject_names
        }
        self._built: CandidateAssignment | None = None

    def _subject_row(self, name: str) -> int:
        """Definition 4.2 over every operation for one subject, as bits."""
        view = augment_view(self.policy.view(name), self._lineage)
        masks = view.masks(self.universe)
        row = 0
        bit = 1
        for operand_masks, result_masks in self._node_masks:
            if assignee_authorized(masks, operand_masks, result_masks):
                row |= bit
            bit <<= 1
        return row

    def refresh(self) -> None:
        """Bring the rows up to the policy's current version."""
        if self.policy.version == self._version:
            return
        deltas = self.policy.deltas_since(self._version)
        self._version = self.policy.version
        if deltas is None:
            # Journal truncated under us: every row is suspect.
            self.stats["full_refreshes"] += 1
            affected = list(self.subject_names)
        else:
            affected = [
                name for name in self.subject_names
                if deltas_touch_masked(self.universe, deltas, {name},
                                       self._attr_mask)
            ]
            self.stats["subject_refreshes"] += len(affected)
            self.stats["subjects_kept"] += \
                len(self.subject_names) - len(affected)
        changed = False
        for name in affected:
            row = self._subject_row(name)
            if row != self._rows[name]:
                changed = True
                self._rows[name] = row
        if changed:
            self._built = None

    def current(self) -> CandidateAssignment:
        """The up-to-date Λ (refreshes first; rebuilt only on change)."""
        self.refresh()
        if self._built is None:
            candidates: dict[int, frozenset[str]] = {}
            bit = 1
            for node in self._operations:
                candidates[id(node)] = frozenset(
                    name for name, row in self._rows.items() if row & bit
                )
                bit <<= 1
            self._built = CandidateAssignment(self.plan, candidates,
                                              self.min_views)
        return self._built


def user_can_receive_result(plan: QueryPlan, policy: Policy,
                            user: Subject | str,
                            min_views: MinimumViewProfiles | None = None,
                            ) -> bool:
    """Whether the querying user may receive the final (decrypted) result.

    §2 expects users to hold plaintext-only authorizations, since they
    must access the query response and manage keys: the root relation,
    with its visible encrypted attributes decrypted for delivery, must be
    authorized for the user per Definition 4.1.
    """
    min_views = min_views or minimum_view_profiles(plan)
    universe = AttributeUniverse()
    root_masks = min_views.result_profile(plan.root).masks(universe)
    delivered = root_masks.decrypt(root_masks.ve)
    view = augment_view(
        policy.view(user.name if isinstance(user, Subject) else user),
        derived_lineage(plan),
    )
    return relation_authorized(view.masks(universe), delivered)

"""Relations, attributes, and database schemas.

The paper works with globally named attributes (``S``, ``B``, ``D`` ... in
the running example; ``l_quantity`` ... in TPC-H).  An attribute is therefore
represented as a plain string, and a :class:`Relation` is an ordered list of
attribute names together with optional type and statistics metadata used by
the cost estimator.

A :class:`Schema` groups the relations visible to a query and enforces the
paper's convention that attribute names are globally unique across relations
(§3 treats ``S`` of Hosp and ``C`` of Ins as distinct names related only
through explicit conditions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.exceptions import SchemaError

# Attribute data types understood by the engine and the cost estimator.
INTEGER = "integer"
DECIMAL = "decimal"
VARCHAR = "varchar"
DATE = "date"

_VALID_TYPES = frozenset({INTEGER, DECIMAL, VARCHAR, DATE})

#: Default plaintext width, in bytes, charged per attribute type.
TYPE_WIDTH_BYTES: Mapping[str, int] = {
    INTEGER: 4,
    DECIMAL: 8,
    VARCHAR: 32,
    DATE: 4,
}


@dataclass(frozen=True)
class AttributeSpec:
    """Metadata for a single attribute of a relation.

    Attributes
    ----------
    name:
        Globally unique attribute name.
    data_type:
        One of :data:`INTEGER`, :data:`DECIMAL`, :data:`VARCHAR`,
        :data:`DATE`.
    width:
        Plaintext width in bytes; defaults to the per-type width.
    distinct_fraction:
        Estimated number of distinct values as a fraction of the relation
        cardinality, in ``(0, 1]``.  Used by the cardinality estimator.
    """

    name: str
    data_type: str = VARCHAR
    width: int = 0
    distinct_fraction: float = 1.0

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"invalid attribute name: {self.name!r}")
        if self.data_type not in _VALID_TYPES:
            raise SchemaError(
                f"unknown data type {self.data_type!r} for attribute {self.name}"
            )
        if self.width < 0:
            raise SchemaError(f"negative width for attribute {self.name}")
        if not 0.0 < self.distinct_fraction <= 1.0:
            raise SchemaError(
                f"distinct_fraction for {self.name} must be in (0, 1], "
                f"got {self.distinct_fraction}"
            )
        if self.width == 0:
            object.__setattr__(self, "width", TYPE_WIDTH_BYTES[self.data_type])


class Relation:
    """A named base relation with an ordered list of attributes.

    Parameters
    ----------
    name:
        Relation name, e.g. ``"Hosp"``.
    attributes:
        Iterable of attribute names (strings) or :class:`AttributeSpec`
        instances; plain names get default metadata.
    cardinality:
        Estimated (or actual) number of tuples, used by the cost model.

    Examples
    --------
    >>> hosp = Relation("Hosp", ["S", "B", "D", "T"])
    >>> hosp.attribute_names
    ('S', 'B', 'D', 'T')
    """

    __slots__ = ("name", "_specs", "_by_name", "cardinality")

    def __init__(self, name: str,
                 attributes: Iterable[str | AttributeSpec],
                 cardinality: int = 1000) -> None:
        if not name:
            raise SchemaError("relation name must be non-empty")
        if cardinality < 0:
            raise SchemaError(f"negative cardinality for relation {name}")
        self.name = name
        specs: list[AttributeSpec] = []
        for attribute in attributes:
            if isinstance(attribute, AttributeSpec):
                specs.append(attribute)
            else:
                specs.append(AttributeSpec(attribute))
        if not specs:
            raise SchemaError(f"relation {name} has no attributes")
        self._specs = tuple(specs)
        self._by_name = {spec.name: spec for spec in specs}
        if len(self._by_name) != len(specs):
            raise SchemaError(f"duplicate attribute names in relation {name}")
        self.cardinality = cardinality

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Attribute names in declaration order."""
        return tuple(spec.name for spec in self._specs)

    @property
    def attribute_set(self) -> frozenset[str]:
        """Attribute names as a frozen set."""
        return frozenset(self._by_name)

    @property
    def specs(self) -> tuple[AttributeSpec, ...]:
        """Full attribute metadata in declaration order."""
        return self._specs

    def spec(self, attribute: str) -> AttributeSpec:
        """Return the :class:`AttributeSpec` for ``attribute``."""
        try:
            return self._by_name[attribute]
        except KeyError:
            raise SchemaError(
                f"relation {self.name} has no attribute {attribute!r}"
            ) from None

    def __contains__(self, attribute: object) -> bool:
        return attribute in self._by_name

    def __iter__(self) -> Iterator[str]:
        return iter(self.attribute_names)

    def __len__(self) -> int:
        return len(self._specs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.name == other.name and self._specs == other._specs

    def __hash__(self) -> int:
        return hash((self.name, self._specs))

    def __repr__(self) -> str:
        attrs = ", ".join(self.attribute_names)
        return f"Relation({self.name}: {attrs})"

    def row_width(self) -> int:
        """Total plaintext width of one tuple, in bytes."""
        return sum(spec.width for spec in self._specs)


@dataclass
class Schema:
    """The set of base relations available to queries.

    Enforces global uniqueness of attribute names across relations, which
    the paper assumes throughout (profiles are sets of bare attribute
    names).
    """

    relations: dict[str, Relation] = field(default_factory=dict)

    def add(self, relation: Relation) -> Relation:
        """Register ``relation``; raises :class:`SchemaError` on clashes."""
        if relation.name in self.relations:
            raise SchemaError(f"duplicate relation name {relation.name!r}")
        owned = self.attribute_owner_map()
        for attribute in relation.attribute_names:
            if attribute in owned:
                raise SchemaError(
                    f"attribute {attribute!r} of {relation.name} clashes with "
                    f"relation {owned[attribute]}"
                )
        self.relations[relation.name] = relation
        return relation

    def relation(self, name: str) -> Relation:
        """Look up a relation by name."""
        try:
            return self.relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def relation_of(self, attribute: str) -> Relation:
        """Return the relation owning ``attribute``."""
        for relation in self.relations.values():
            if attribute in relation:
                return relation
        raise SchemaError(f"no relation owns attribute {attribute!r}")

    def attribute_owner_map(self) -> dict[str, str]:
        """Map every attribute name to its owning relation name."""
        owners: dict[str, str] = {}
        for relation in self.relations.values():
            for attribute in relation.attribute_names:
                owners[attribute] = relation.name
        return owners

    def all_attributes(self) -> frozenset[str]:
        """All attribute names across all relations."""
        return frozenset(self.attribute_owner_map())

    def __contains__(self, name: object) -> bool:
        return name in self.relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self.relations.values())

    def __len__(self) -> int:
        return len(self.relations)

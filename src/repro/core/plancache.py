"""Policy-versioned caching of assignment results.

The multi-tenant scenario of the ROADMAP north star — the same queries
planned over a stable policy for millions of users — pays the full §6
pipeline (candidates, DP search, minimal extension, key establishment,
exact costing) on every request, even though the output only depends on
the plan structure, the policy contents, and the pricing inputs.
:class:`AssignmentCache` memoises full
:class:`~repro.core.assignment.AssignmentResult` objects one layer above
the executor's result cache of PR 1:

* the **key** combines the plan's structural fingerprint
  (:meth:`~repro.core.plan.QueryPlan.fingerprint`), the policy's
  monotone :attr:`~repro.core.authorization.Policy.version` counter
  (bumped by every ``grant``/``revoke``, so any policy change misses),
  and the remaining value-like inputs of
  :func:`~repro.core.assignment.assign` (subjects, user, owners,
  strategy, scheme capabilities, per-node plaintext requirements);
* the **context** holds the identity-compared inputs (the policy and
  price-list/topology objects).  Entries keep strong references to their
  context, so a hit requires the *same live objects* — two different
  policies that happen to share a version count can never alias.

Entries are evicted least-recently-used beyond ``maxsize``.  Cached
results are shared (not copied); callers must treat them as immutable.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Hashable, Iterable, Mapping

from repro.core.authorization import Policy
from repro.core.plan import NodeMap, QueryPlan
from repro.core.operators import PlanNode

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.assignment import AssignmentResult

#: Objects compared by identity on lookup (kept alive by the entry).
Context = tuple[object, ...]


def requirements_signature(
    plan: QueryPlan,
    requirements: Mapping[PlanNode, frozenset[str]],
) -> tuple[tuple[str, ...], ...]:
    """Hashable per-operation ``Ap`` signature, in post-order."""
    requirement_map: NodeMap[frozenset[str]] = NodeMap(requirements)
    return tuple(
        tuple(sorted(requirement_map.get(node, frozenset())))
        for node in plan.operations()
    )


def assignment_cache_key(
    plan: QueryPlan,
    policy: Policy,
    subject_names: Iterable[str],
    user: str,
    owners: Mapping[str, str] | None,
    strategy: str,
    capabilities: Hashable,
    requirements: Mapping[PlanNode, frozenset[str]],
) -> tuple:
    """The value part of a cache key for one ``assign`` invocation."""
    return (
        plan.fingerprint(),
        policy.version,
        tuple(sorted(subject_names)),
        user,
        tuple(sorted((owners or {}).items())),
        strategy,
        capabilities,
        requirements_signature(plan, requirements),
    )


class AssignmentCache:
    """An LRU over full assignment results, keyed by policy version.

    Examples
    --------
    >>> cache = AssignmentCache(maxsize=2)
    >>> cache.put(("k",), (None,), "result")
    >>> cache.get(("k",), (None,))
    'result'
    >>> cache.get(("k",), ("other-context",)) is None
    True
    >>> cache.info()["hits"], cache.info()["misses"]
    (1, 1)
    """

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._entries: OrderedDict[tuple, tuple[Context, object]] = \
            OrderedDict()
        self._hits = 0
        self._misses = 0

    def get(self, key: tuple, context: Context) -> "AssignmentResult | None":
        """The cached result for ``key``, or ``None``.

        ``context`` must match the stored context object-for-object
        (``is``), guarding against id-collisions between distinct
        policies/price lists with equal value keys.
        """
        entry = self._entries.get(key)
        if entry is not None:
            stored_context, result = entry
            if len(stored_context) == len(context) and all(
                stored is current
                for stored, current in zip(stored_context, context)
            ):
                self._entries.move_to_end(key)
                self._hits += 1
                return result
        self._misses += 1
        return None

    def put(self, key: tuple, context: Context, result: object) -> None:
        """Store ``result``, evicting the least recently used overflow."""
        self._entries[key] = (tuple(context), result)
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries (statistics are kept)."""
        self._entries.clear()

    def info(self) -> dict[str, int]:
        """Hit/miss/size counters."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "size": len(self._entries),
            "maxsize": self.maxsize,
        }

    def __len__(self) -> int:
        return len(self._entries)

"""Delta-reconciled caching of assignment results.

The multi-tenant scenario of the ROADMAP north star — the same queries
planned over a churning policy for millions of users — pays the full §6
pipeline (candidates, DP search, minimal extension, key establishment,
exact costing) on every request unless results are memoised, and at
production scale grants/revokes are a continuous stream: flushing every
cache on every ``Policy.version`` bump would make warm caches a fiction.
:class:`AssignmentCache` therefore memoises full
:class:`~repro.core.assignment.AssignmentResult` objects one layer above
the executor's result cache of PR 1 and keeps them alive *across* policy
mutations via the policy's delta journal.

The delta journal
-----------------
Every effective ``grant``/``revoke`` appends a
:class:`~repro.core.authorization.PolicyDelta` to a bounded journal on
the policy: the mutated (relation, subject) pair plus a conservative
``touched`` attribute set — the rule's own ``P ∪ E`` union the
attributes of the :data:`~repro.core.authorization.ANY` default the
mutation displaced or restored (an explicit rule shadows the default, so
granting one can *shrink* a view and revoking one can *grow* it).
:meth:`Policy.deltas_since(v) <repro.core.authorization.Policy.deltas_since>`
returns the deltas after version ``v``, or ``None`` when the journal no
longer reaches back that far.

The reconcile contract
----------------------
Entries record the policy version they were computed at plus a
*dependency footprint* ``(subjects, attributes)`` — see
:func:`plan_dependencies`.  On lookup with a live policy, the cache
walks ``deltas_since(entry.version)``:

* no delta touches the footprint → the entry is **kept** and its
  version rebased to the current one (counter ``reconcile_kept``);
* some delta touches it → the entry **dies** (``reconcile_evicted``);
* the journal was truncated (or the entry's version is unknown to this
  policy) → the entry **dies** unconditionally (``reconcile_flushed``).

Safety invariant
----------------
Every cache reconciling against the journal must be *conservative
toward eviction*: a revocation may never be under-invalidated.  An
entry may only survive a delta stream when its dependency footprint is
provably disjoint from every delta — the footprint must therefore
over-approximate what the entry depends on (here: every subject the
assignment chose among, and every attribute name the plan touches,
including derived aliases, matched by name exactly as
:meth:`Policy.view <repro.core.authorization.Policy.view>` unions rules
by name).  When in doubt, evict; staleness bugs in an authorization
planner are security bugs.

Key and context
---------------
* the **key** combines the plan's structural fingerprint
  (:meth:`~repro.core.plan.QueryPlan.fingerprint`) and the remaining
  value-like inputs of :func:`~repro.core.assignment.assign` (subjects,
  user, owners, strategy, scheme capabilities, per-node plaintext
  requirements).  The policy version is deliberately *not* part of the
  key any more — versioning lives in the reconcile path;
* the **context** holds the identity-compared inputs (the policy and
  price-list/topology objects).  Entries keep strong references to
  their context, so a hit requires the *same live objects* — two
  different policies can never alias.

Entries are evicted least-recently-used beyond ``maxsize``.  Cached
results are shared (not copied); callers must treat them as immutable.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Hashable, Iterable, Mapping

from repro.core.authorization import Policy
from repro.core.lineage import derived_lineage
from repro.core.plan import NodeMap, QueryPlan
from repro.core.operators import PlanNode

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.assignment import AssignmentResult

#: Objects compared by identity on lookup (kept alive by the entry).
Context = tuple[object, ...]

#: An entry's dependency footprint: the subjects whose views it read and
#: the attribute names those reads were restricted to (``None`` = all).
Dependencies = tuple[frozenset[str], "frozenset[str] | None"]


def requirements_signature(
    plan: QueryPlan,
    requirements: Mapping[PlanNode, frozenset[str]],
) -> tuple[tuple[str, ...], ...]:
    """Hashable per-operation ``Ap`` signature, in post-order."""
    requirement_map: NodeMap[frozenset[str]] = NodeMap(requirements)
    return tuple(
        tuple(sorted(requirement_map.get(node, frozenset())))
        for node in plan.operations()
    )


def plan_dependencies(
    plan: QueryPlan,
    subject_names: Iterable[str],
    user: str,
    owners: Mapping[str, str] | None = None,
) -> Dependencies:
    """The dependency footprint of an assignment over ``plan``.

    Subjects: every candidate assignee, the querying user, and the data
    owners.  Attributes: every base attribute of the plan's leaf
    relations plus every derived alias the plan introduces (a rule
    granting a same-named attribute on *any* relation changes
    ``Policy.view``'s by-name union, so name-level matching is exactly
    the right granularity).
    """
    subjects = set(subject_names)
    subjects.add(user)
    subjects.update((owners or {}).values())
    attributes: set[str] = set()
    for leaf in plan.leaves():
        attributes |= leaf.relation.attribute_set
    attributes.update(derived_lineage(plan))
    return frozenset(subjects), frozenset(attributes)


def assignment_cache_key(
    plan: QueryPlan,
    policy: Policy,
    subject_names: Iterable[str],
    user: str,
    owners: Mapping[str, str] | None,
    strategy: str,
    capabilities: Hashable,
    requirements: Mapping[PlanNode, frozenset[str]],
) -> tuple:
    """The value part of a cache key for one ``assign`` invocation.

    The policy participates via the reconcile path (and the identity
    context), not the key: entries outlive version bumps that provably
    do not touch their dependency footprint.
    """
    del policy  # identity-checked via the context; versions reconcile
    return (
        plan.fingerprint(),
        tuple(sorted(subject_names)),
        user,
        tuple(sorted((owners or {}).items())),
        strategy,
        capabilities,
        requirements_signature(plan, requirements),
    )


class _Entry:
    """One cached result with its reconcile bookkeeping."""

    __slots__ = ("context", "result", "version", "depends")

    def __init__(self, context: Context, result: object,
                 version: int | None,
                 depends: Dependencies | None) -> None:
        self.context = context
        self.result = result
        self.version = version
        self.depends = depends


class AssignmentCache:
    """An LRU over full assignment results, reconciled via policy deltas.

    Examples
    --------
    >>> cache = AssignmentCache(maxsize=2)
    >>> cache.put(("k",), (None,), "result")
    >>> cache.get(("k",), (None,))
    'result'
    >>> cache.get(("k",), ("other-context",)) is None
    True
    >>> cache.info()["hits"], cache.info()["misses"]
    (1, 1)
    """

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._entries: OrderedDict[tuple, _Entry] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._kept = 0
        self._patched = 0
        self._evicted = 0
        self._flushed = 0

    def _reconcile(self, key: tuple, entry: _Entry,
                   policy: Policy) -> bool:
        """Whether ``entry`` survives the deltas since it was stored.

        Implements the module-level reconcile contract; surviving
        entries are rebased to the current version so later lookups walk
        only newer deltas.
        """
        if entry.version is None or entry.version == policy.version:
            return True
        deltas = policy.deltas_since(entry.version)
        if deltas is None:
            del self._entries[key]
            self._flushed += 1
            return False
        subjects, attributes = entry.depends or (frozenset(), None)
        if entry.depends is None or any(
            delta.touches(subjects, attributes) for delta in deltas
        ):
            del self._entries[key]
            self._evicted += 1
            return False
        entry.version = policy.version
        self._kept += 1
        return True

    def get(self, key: tuple, context: Context,
            policy: Policy | None = None) -> "AssignmentResult | None":
        """The cached result for ``key``, or ``None``.

        ``context`` must match the stored context object-for-object
        (``is``), guarding against id-collisions between distinct
        policies/price lists with equal value keys.  With ``policy``
        given, the entry is first reconciled against the delta journal
        (see the module docstring); without it, version-stamped entries
        miss whenever the stamp could be stale (safe default).
        """
        entry = self._entries.get(key)
        if entry is not None:
            if len(entry.context) == len(context) and all(
                stored is current
                for stored, current in zip(entry.context, context)
            ):
                if policy is not None:
                    if not self._reconcile(key, entry, policy):
                        self._misses += 1
                        return None
                elif entry.version is not None:
                    self._misses += 1
                    return None
                self._entries.move_to_end(key)
                self._hits += 1
                return entry.result
        self._misses += 1
        return None

    def put(self, key: tuple, context: Context, result: object,
            policy: Policy | None = None,
            depends: Dependencies | None = None) -> None:
        """Store ``result``, evicting the least recently used overflow.

        ``policy`` stamps the entry with the version it was computed at;
        ``depends`` is its dependency footprint (omitting it makes the
        entry die on any newer delta — conservative).
        """
        self._entries[key] = _Entry(
            tuple(context), result,
            None if policy is None else policy.version, depends,
        )
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries (statistics are kept)."""
        self._entries.clear()

    def info(self) -> dict[str, int]:
        """Hit/miss/size counters plus reconcile statistics."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "size": len(self._entries),
            "maxsize": self.maxsize,
            "reconcile_kept": self._kept,
            "reconcile_patched": self._patched,
            "reconcile_evicted": self._evicted,
            "reconcile_flushed": self._flushed,
        }

    def __len__(self) -> int:
        return len(self._entries)

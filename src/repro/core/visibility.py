"""Authorized visibility and operation assignment (Section 4).

Implements Definition 4.1 (when a subject is *authorized for a relation*,
given its profile) and Definition 4.2 (when a subject is an *authorized
assignee* of a plan operation, i.e. authorized for the operands and for the
produced relation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.attrsets import AttributeUniverse, assignee_authorized
from repro.core.authorization import Policy, Subject, SubjectView
from repro.core.lineage import augment_view, derived_lineage
from repro.core.operators import PlanNode
from repro.core.plan import NodeMap, QueryPlan
from repro.core.profile import RelationProfile
from repro.exceptions import UnauthorizedError


@dataclass(frozen=True)
class AuthorizationCheck:
    """Outcome of a Definition 4.1 check, with per-condition diagnostics.

    ``violations`` lists human-readable reasons, each tagged with the
    failing condition number of Definition 4.1.
    """

    subject: str
    authorized: bool
    violations: tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return self.authorized


def check_relation(view: SubjectView,
                   profile: RelationProfile) -> AuthorizationCheck:
    """Evaluate Definition 4.1 for a subject view and a relation profile.

    The three conditions:

    1. ``Rvp ∪ Rip ⊆ P_S`` — authorized for plaintext;
    2. ``Rve ∪ Rie ⊆ P_S ∪ E_S`` — authorized for encrypted;
    3. ``∀A ∈ R≃: A ⊆ P_S or A ⊆ E_S`` — uniform visibility.

    Examples
    --------
    Example 4.1 of the paper: given Y's view ``P_Y=BDTP, E_Y=SC`` and a
    relation with profile ``[P, BSC, -, -, {SC}]``, Y is authorized:

    >>> from repro.core.authorization import SubjectView
    >>> from repro.core.profile import RelationProfile
    >>> from repro.core.equivalence import EquivalenceClasses
    >>> y = SubjectView("Y", frozenset("BDTP"), frozenset("SC"))
    >>> r = RelationProfile(frozenset("P"), frozenset("BSC"),
    ...                     equivalences=EquivalenceClasses.of("SC"))
    >>> check_relation(y, r).authorized
    True
    """
    violations: list[str] = []

    plaintext_needed = profile.visible_plaintext | profile.implicit_plaintext
    not_plain = plaintext_needed - view.plaintext
    if not_plain:
        violations.append(
            f"condition 1: no plaintext authorization for {sorted(not_plain)}"
        )

    encrypted_needed = profile.visible_encrypted | profile.implicit_encrypted
    not_enc = encrypted_needed - (view.plaintext | view.encrypted)
    if not_enc:
        violations.append(
            f"condition 2: no visibility authorization for {sorted(not_enc)}"
        )

    for eq_class in profile.equivalences:
        if not (eq_class <= view.plaintext or eq_class <= view.encrypted):
            violations.append(
                "condition 3: non-uniform visibility over "
                f"{{{','.join(sorted(eq_class))}}}"
            )

    return AuthorizationCheck(
        subject=view.subject,
        authorized=not violations,
        violations=tuple(violations),
    )


def is_authorized_for_relation(view: SubjectView,
                               profile: RelationProfile) -> bool:
    """Boolean form of :func:`check_relation` (Definition 4.1).

    Diagnostics-free fast path: evaluates the three conditions with
    set-subset tests only, without formatting any violation strings.
    Use :func:`check_relation` when the *reasons* are needed.
    """
    if not (profile.visible_plaintext
            | profile.implicit_plaintext) <= view.plaintext:
        return False
    visible = view.plaintext | view.encrypted
    if not (profile.visible_encrypted
            | profile.implicit_encrypted) <= visible:
        return False
    for eq_class in profile.equivalences:
        if not (eq_class <= view.plaintext or eq_class <= view.encrypted):
            return False
    return True


def require_authorized(view: SubjectView, profile: RelationProfile,
                       context: str = "relation") -> None:
    """Raise :class:`UnauthorizedError` unless Definition 4.1 holds."""
    check = check_relation(view, profile)
    if not check.authorized:
        raise UnauthorizedError(
            f"subject {view.subject} is not authorized for {context}: "
            + "; ".join(check.violations),
            subject=view.subject,
            violations=check.violations,
        )


def check_assignee(view: SubjectView, node: PlanNode,
                   operand_profiles: Iterable[RelationProfile],
                   result_profile: RelationProfile) -> AuthorizationCheck:
    """Evaluate Definition 4.2: authorized for operands *and* result."""
    violations: list[str] = []
    for index, operand in enumerate(operand_profiles):
        check = check_relation(view, operand)
        if not check.authorized:
            violations.extend(
                f"operand {index}: {reason}" for reason in check.violations
            )
    result_check = check_relation(view, result_profile)
    if not result_check.authorized:
        violations.extend(
            f"result: {reason}" for reason in result_check.violations
        )
    return AuthorizationCheck(
        subject=view.subject,
        authorized=not violations,
        violations=tuple(violations),
    )


def is_authorized_assignee(view: SubjectView, node: PlanNode,
                           operand_profiles: Iterable[RelationProfile],
                           result_profile: RelationProfile) -> bool:
    """Boolean form of :func:`check_assignee` (Definition 4.2).

    Diagnostics-free: short-circuits on the first failing operand
    instead of collecting violations.
    """
    for operand in operand_profiles:
        if not is_authorized_for_relation(view, operand):
            return False
    return is_authorized_for_relation(view, result_profile)


def authorized_assignees(plan: QueryPlan, policy: Policy,
                         subjects: Iterable[Subject | str],
                         ) -> dict[PlanNode, frozenset[str]]:
    """Authorized assignees of every operation of ``plan`` (Figure 3).

    Evaluates Definition 4.2 against the plan's *actual* profiles — i.e.
    without assuming any additional encryption.  (The candidate sets of
    Definition 5.3, which do assume encryption-on-the-fly, live in
    :mod:`repro.core.candidates`.)
    """
    profiles = plan.profiles()
    lineage = derived_lineage(plan)
    universe = AttributeUniverse()
    views = [
        augment_view(
            policy.view(s.name if isinstance(s, Subject) else s), lineage
        )
        for s in subjects
    ]
    view_masks = [(view.subject, view.masks(universe)) for view in views]
    result: dict[PlanNode, frozenset[str]] = {}
    for node in plan.operations():
        operand_masks = [profiles[child].masks(universe)
                         for child in node.children]
        result_masks = profiles[node].masks(universe)
        result[node] = frozenset(
            subject for subject, masks in view_masks
            if assignee_authorized(masks, operand_masks, result_masks)
        )
    return result


def verify_assignment(plan: QueryPlan, policy: Policy,
                      assignment: Mapping[PlanNode, str]) -> bool:
    """Whether ``assignment`` is an authorized assignment function (Def. 4.2).

    ``assignment`` must cover every non-leaf node of ``plan``.  Raises
    :class:`UnauthorizedError` naming the first violating node otherwise.
    """
    profiles = plan.profiles()
    lineage = derived_lineage(plan)
    assignees: NodeMap[str] = NodeMap(assignment)
    for node in plan.operations():
        subject = assignees.get(node)
        if subject is None:
            raise UnauthorizedError(
                f"assignment does not cover operation {node.label()}"
            )
        if subject.startswith("authority:"):
            # Synthetic owner of a base relation: authorized for its own
            # content by definition (§2); used when no explicit owner
            # subject was supplied.
            continue
        view = augment_view(policy.view(subject), lineage)
        check = check_assignee(
            view, node, [profiles[c] for c in node.children], profiles[node]
        )
        if not check.authorized:
            raise UnauthorizedError(
                f"subject {subject} is not an authorized assignee of "
                f"{node.label()}: " + "; ".join(check.violations),
                subject=subject,
                violations=check.violations,
            )
    return True

"""End-to-end query budgets and cooperative cancellation.

A client that gave up must not have its query planned, dispatched,
retried and failed over at full cost.  :class:`QueryBudget` states what
one query may spend — a wall-clock deadline and/or a §7 cost ceiling —
and :class:`CancellationToken` carries that budget (plus a client
cancel switch) through every layer: gateway → ``QueryService`` →
``DistributedRuntime`` → executor → ``WorkerPool``.

The checkpoint contract
-----------------------
Cancellation is **cooperative**: nothing is killed mid-operation.
Layers call :meth:`CancellationToken.check` at well-defined boundaries
and the abort unwinds as :class:`~repro.exceptions.QueryCancelledError`
or :class:`~repro.exceptions.DeadlineExceededError` from the first
checkpoint that observes it.  The checkpoints are:

* **gateway** — at dequeue, before a queued entry reaches the service
  (an expired or cancelled entry is settled without a single planning
  cycle);
* **service** — on entry, after planning (where the cost ceiling is
  enforced against the assignment's exact §7 cost), and at every
  standby/re-plan failover tier;
* **runtime** — at every fragment boundary (both schedules), at every
  retry iteration (backoff sleeps are clamped to the remaining
  budget), and at every in-place failover candidate;
* **worker pool** — between chunks of a chunked parallel map, via the
  thread-scoped :func:`active_token` (a chunk in flight completes; the
  next never starts).

Two guarantees follow.  *Bounded abort latency*: the time between
``cancel()``/expiry and the error returning is at most one parallel
chunk or one fragment attempt — whatever unit was in flight when the
abort landed.  *No poisoned caches*: every cache along the pipeline
(plan, assignment, dispatch/key memos, fragment results, executor
memos) inserts only complete entries after full computation, and those
inserts stay generation-fenced exactly as for policy churn and catalog
refresh — an abort raised at a checkpoint can only *skip* inserts,
never leave a partial one, so a re-run after an abort is bit-identical
to a never-aborted run (property-tested in
``tests/properties/test_budget_cancellation.py``).

Time is injectable (``clock``), following the
:mod:`repro.distributed.health` convention, so deadline behaviour is
fully deterministic under a fake clock.  This module imports nothing
beyond the exception hierarchy, so every layer (including
:mod:`repro.parallel.pool`, which must stay free of crypto/engine
imports) can depend on it without cycles.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.exceptions import DeadlineExceededError, QueryCancelledError


@dataclass(frozen=True)
class QueryBudget:
    """What one query may spend, end to end.

    ``deadline_seconds`` bounds the wall clock from token creation
    (gateway submit / service entry) to result delivery — queue wait,
    planning, retries, backoff sleeps and failover re-planning all
    draw from it.  ``cost_ceiling_usd`` bounds the §7 cost of the plan
    the assignment search selects.  ``None`` disables a dimension; the
    default budget is unlimited on both.
    """

    deadline_seconds: float | None = None
    cost_ceiling_usd: float | None = None

    def __post_init__(self) -> None:
        if self.deadline_seconds is not None \
                and not self.deadline_seconds > 0:
            raise ValueError(
                f"deadline_seconds must be > 0 (or None for no "
                f"deadline), got {self.deadline_seconds!r}")
        if self.cost_ceiling_usd is not None \
                and not self.cost_ceiling_usd > 0:
            raise ValueError(
                f"cost_ceiling_usd must be > 0 (or None for no "
                f"ceiling), got {self.cost_ceiling_usd!r}")

    @property
    def unlimited(self) -> bool:
        """Whether this budget constrains nothing."""
        return self.deadline_seconds is None \
            and self.cost_ceiling_usd is None


class CancellationToken:
    """One query's live budget state: deadline clock + cancel switch.

    Created when the query enters the system (the deadline countdown
    starts *then* — queue wait counts); passed by reference through
    every layer.  Thread-safe: the client cancels from its own thread
    while fragment workers call :meth:`check` concurrently.
    """

    def __init__(self, budget: QueryBudget | None = None, *,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.budget = budget if budget is not None else QueryBudget()
        self._clock = clock
        self.started_at = clock()
        self.deadline_at = (
            None if self.budget.deadline_seconds is None
            else self.started_at + self.budget.deadline_seconds)
        self._cancelled = False
        self._cancel_reason: str | None = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def cancel(self, reason: str = "client cancelled") -> None:
        """Request the query stop at its next checkpoint (idempotent)."""
        with self._lock:
            if not self._cancelled:
                self._cancelled = True
                self._cancel_reason = reason

    @property
    def cancelled(self) -> bool:
        with self._lock:
            return self._cancelled

    @property
    def cancel_reason(self) -> str | None:
        with self._lock:
            return self._cancel_reason

    # ------------------------------------------------------------------
    # Budget arithmetic
    # ------------------------------------------------------------------
    def elapsed_seconds(self) -> float:
        return self._clock() - self.started_at

    def remaining_seconds(self) -> float | None:
        """Seconds left on the deadline (``None`` = no deadline).

        Never negative: an expired token reports ``0.0``, so callers
        can clamp sleeps with ``min(delay, remaining)`` directly.
        """
        if self.deadline_at is None:
            return None
        return max(0.0, self.deadline_at - self._clock())

    def remaining_fraction(self) -> float | None:
        """Remaining / total deadline in [0, 1] (``None`` = no deadline)."""
        if self.budget.deadline_seconds is None:
            return None
        remaining = self.remaining_seconds()
        return min(1.0, remaining / self.budget.deadline_seconds)

    def expired(self) -> bool:
        """Whether the deadline has passed (False without a deadline)."""
        return self.deadline_at is not None \
            and self._clock() >= self.deadline_at

    def clamp(self, seconds: float) -> float:
        """``seconds`` bounded by the remaining budget (for sleeps)."""
        remaining = self.remaining_seconds()
        if remaining is None:
            return seconds
        return min(seconds, remaining)

    # ------------------------------------------------------------------
    # The checkpoint
    # ------------------------------------------------------------------
    def check(self, where: str) -> None:
        """Raise if the query must stop; otherwise return immediately.

        Cancellation wins over expiry when both hold (the client's
        explicit signal is the more specific diagnosis).  ``where``
        names the checkpoint for the error message and the exception's
        ``where`` attribute.
        """
        if self.cancelled:
            raise QueryCancelledError(
                f"query cancelled ({self.cancel_reason}) at {where}",
                where=where, reason=self.cancel_reason)
        if self.expired():
            elapsed = self.elapsed_seconds()
            raise DeadlineExceededError(
                f"query deadline of {self.budget.deadline_seconds:g}s "
                f"exceeded at {where} (elapsed {elapsed:.3f}s)",
                where=where,
                deadline_seconds=self.budget.deadline_seconds,
                elapsed_seconds=elapsed)


# ---------------------------------------------------------------------
# Thread-scoped token propagation
# ---------------------------------------------------------------------
# The worker pool and the executor sit several layers below the code
# that owns the token, behind interfaces (persistent per-subject
# executors, a process-wide shared pool) that outlive any one query.
# Rather than threading a per-query argument through every call, the
# runtime scopes the token to the thread evaluating a fragment; the
# chunked parallel map picks it up between chunks via active_token().
_SCOPE = threading.local()


def active_token() -> CancellationToken | None:
    """The token scoped to the current thread, if any."""
    return getattr(_SCOPE, "token", None)


@contextmanager
def token_scope(token: CancellationToken | None) -> Iterator[None]:
    """Scope ``token`` to the current thread for the ``with`` body.

    Re-entrant (the previous scope is restored on exit); a ``None``
    token clears the scope for the body, so unbudgeted work nested
    inside budgeted work is never aborted by the outer token.
    """
    previous = getattr(_SCOPE, "token", None)
    _SCOPE.token = token
    try:
        yield
    finally:
        _SCOPE.token = previous

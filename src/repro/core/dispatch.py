"""Sub-query dispatch (§6, Figure 8).

An extended plan with its assignment is partitioned into *fragments*: the
maximal subtrees executed by a single subject.  Each fragment becomes a
sub-query ``req_S`` that pulls its inputs from the fragments below it —
exactly the paper's dispatch where U calls Y, whose query references
``req_X``, which references ``req_H`` and ``req_I``.

For every fragment the dispatcher renders a human-readable SQL-like text
(the middle column of Figure 8) and collects the encryption keys its
subject needs; the communication layer in :mod:`repro.distributed` seals
``[[q, keys] priU ] pubS`` envelopes around them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.core.extension import ExtendedPlan
from repro.core.keys import KeyAssignment
from repro.core.operators import (
    BaseRelationNode,
    CartesianProduct,
    Decrypt,
    Encrypt,
    GroupBy,
    Join,
    PlanNode,
    Projection,
    Selection,
    Udf,
)
from repro.exceptions import DispatchError


@dataclass
class SubQuery:
    """One fragment of the extended plan, executed by one subject."""

    fragment_id: str
    subject: str
    root: PlanNode
    nodes: tuple[PlanNode, ...]
    #: fragment ids this sub-query pulls results from, keyed by the
    #: boundary node (the child of this fragment produced elsewhere).
    requests: dict[int, str] = field(default_factory=dict)
    key_names: tuple[str, ...] = ()
    text: str = ""

    def describe(self) -> str:
        """Figure 8-style row: subject, keys, and query text."""
        keys = ",".join(self.key_names) or "-"
        return f"{self.subject} [{keys}]: {self.text}"


@dataclass
class DispatchPlan:
    """All sub-queries of one query execution, root fragment first."""

    fragments: dict[str, SubQuery]
    root_fragment_id: str
    user: str

    def fragment(self, fragment_id: str) -> SubQuery:
        """Look up a fragment."""
        try:
            return self.fragments[fragment_id]
        except KeyError:
            raise DispatchError(f"unknown fragment {fragment_id!r}") from None

    def in_call_order(self) -> Iterator[SubQuery]:
        """Fragments in request order (root first, then its inputs)."""
        pending = [self.root_fragment_id]
        while pending:
            fragment = self.fragment(pending.pop(0))
            yield fragment
            pending.extend(fragment.requests.values())

    # ------------------------------------------------------------------
    # Dependency graph (consumed by the concurrent runtime scheduler)
    # ------------------------------------------------------------------
    def dependencies(self) -> dict[str, tuple[str, ...]]:
        """Fragment id → ids of the fragments it pulls inputs from."""
        return {
            fragment_id: tuple(fragment.requests.values())
            for fragment_id, fragment in self.fragments.items()
        }

    def dependents(self) -> dict[str, tuple[str, ...]]:
        """Fragment id → ids of the fragments that consume its output."""
        parents: dict[str, list[str]] = {f: [] for f in self.fragments}
        for fragment_id, fragment in self.fragments.items():
            for child_id in fragment.requests.values():
                if child_id not in parents:
                    raise DispatchError(
                        f"fragment {fragment_id!r} requests unknown "
                        f"fragment {child_id!r}"
                    )
                parents[child_id].append(fragment_id)
        return {f: tuple(p) for f, p in parents.items()}

    def execution_levels(self) -> tuple[tuple[str, ...], ...]:
        """Topological waves, producers first.

        Fragments within one level have no request path between them, so
        a scheduler may run them concurrently (subject to per-subject
        serialization).  Raises :class:`DispatchError` on a request
        cycle or a request to an unknown fragment.
        """
        dependencies = self.dependencies()
        self.dependents()  # validates that every request target exists
        pending = {f: set(deps) for f, deps in dependencies.items()}
        levels: list[tuple[str, ...]] = []
        done: set[str] = set()
        while pending:
            ready = sorted(
                f for f, deps in pending.items() if deps <= done
            )
            if not ready:
                raise DispatchError(
                    "request cycle among fragments: "
                    + ", ".join(sorted(pending))
                )
            levels.append(tuple(ready))
            done.update(ready)
            for fragment_id in ready:
                del pending[fragment_id]
        return tuple(levels)

    def describe(self) -> str:
        """The Figure 8 table."""
        return "\n".join(f.describe() for f in self.in_call_order())


def dispatch(extended: ExtendedPlan, keys: KeyAssignment,
             owners: Mapping[str, str] | None = None,
             user: str = "U") -> DispatchPlan:
    """Partition an extended plan into per-subject sub-queries.

    Fragment boundaries fall wherever the executing subject changes
    (leaves belong to the authority owning the relation).  Keys are
    attached to the fragments containing the encryption/decryption
    operations that need them, reproducing §6's key distribution.
    """
    owners = owners or {}
    plan = extended.plan

    def location(node: PlanNode) -> str:
        if isinstance(node, BaseRelationNode):
            name = node.relation.name
            return owners.get(name, f"authority:{name}")
        return extended.assignee(node)

    # Identify fragment roots: plan root + every node whose parent runs
    # under a different subject.
    roots: list[PlanNode] = []
    for node in plan.postorder():
        parent = plan.parent(node)
        if parent is None or location(node) != location(parent):
            roots.append(node)

    fragment_of_root: dict[int, str] = {}
    counters: dict[str, int] = {}
    for root in roots:
        subject = location(root)
        counters[subject] = counters.get(subject, 0) + 1
        suffix = str(counters[subject]) if counters[subject] > 1 else ""
        fragment_of_root[id(root)] = f"req{subject}{suffix}"

    fragments: dict[str, SubQuery] = {}
    for root in roots:
        subject = location(root)
        nodes: list[PlanNode] = []
        requests: dict[int, str] = {}
        stack = [root]
        while stack:
            node = stack.pop()
            nodes.append(node)
            for child in node.children:
                if id(child) in fragment_of_root:
                    requests[id(child)] = fragment_of_root[id(child)]
                else:
                    stack.append(child)
        key_names = _fragment_keys(nodes, keys)
        fragment = SubQuery(
            fragment_id=fragment_of_root[id(root)],
            subject=subject,
            root=root,
            nodes=tuple(nodes),
            requests=requests,
            key_names=key_names,
        )
        fragment.text = _render_fragment(fragment, keys, extended)
        fragments[fragment.fragment_id] = fragment

    return DispatchPlan(
        fragments=fragments,
        root_fragment_id=fragment_of_root[id(plan.root)],
        user=user,
    )


def _fragment_keys(nodes: list[PlanNode],
                   keys: KeyAssignment) -> tuple[str, ...]:
    names: set[str] = set()
    for node in nodes:
        if isinstance(node, (Encrypt, Decrypt)):
            for attribute in node.attributes:
                names.add(keys.key_for(attribute).name)
    return tuple(sorted(names))


# ---------------------------------------------------------------------------
# SQL-like rendering (the middle column of Figure 8)
# ---------------------------------------------------------------------------


def _render_fragment(fragment: SubQuery, keys: KeyAssignment,
                     extended: ExtendedPlan) -> str:
    """Render a fragment as nested SQL-like text.

    Encrypted attributes are marked ``a^k`` as in the paper; encryption
    and decryption appear as ``encrypt(a, kA)`` / ``decrypt(a^k, kA)``
    expressions in the select list.  Select lists across fragment
    boundaries are reconstructed from the extended plan's profiles.
    """
    state = _RenderState(fragment, keys, extended)
    select_list, source, clauses = state.render(fragment.root)
    parts = [f"select {', '.join(select_list)}", f"from {source}"]
    parts.extend(clauses)
    return " ".join(parts)


class _RenderState:
    """Accumulates clauses while walking a fragment top-down."""

    def __init__(self, fragment: SubQuery, keys: KeyAssignment,
                 extended: ExtendedPlan) -> None:
        self.fragment = fragment
        self.keys = keys
        self.profiles = extended.plan.profiles()

    def key_of(self, attribute: str) -> str:
        try:
            return self.keys.key_for(attribute).name
        except Exception:
            return f"k{attribute}"

    def mark(self, attribute: str, node: PlanNode) -> str:
        """``a^k`` when ``a`` is encrypted in ``node``'s output."""
        profile = self.profiles[node]
        if attribute in profile.visible_encrypted:
            return f"{attribute}^k"
        return attribute

    def select_of(self, node: PlanNode) -> list[str]:
        """Plain select list from a node's output profile."""
        profile = self.profiles[node]
        return [self.mark(a, node) for a in sorted(profile.visible)]

    def render(self, node: PlanNode,
               ) -> tuple[list[str], str, list[str]]:
        if id(node) in self.fragment.requests:
            request = self.fragment.requests[id(node)]
            return self.select_of(node), f"⟦{request}⟧", []
        if isinstance(node, BaseRelationNode):
            kept = [a for a in node.relation.attribute_names
                    if a in node.projection]
            return kept, node.relation.name, []
        if isinstance(node, Encrypt):
            select, source, clauses = self.render(node.left)
            select = _replace_each(
                select, node.attributes,
                lambda a: f"encrypt({a},{self.key_of(a)})",
            )
            return select, source, clauses
        if isinstance(node, Decrypt):
            select, source, clauses = self.render(node.left)
            select = _replace_each(
                select, node.attributes,
                lambda a: f"decrypt({a}^k,{self.key_of(a)}) as {a}",
            )
            return select, source, clauses
        if isinstance(node, Selection):
            select, source, clauses = self.render(node.left)
            keyword = "having" if self._below_group_by(node) else "where"
            condition = self._render_predicate(node)
            return select, source, clauses + [f"{keyword} {condition}"]
        if isinstance(node, Projection):
            select, source, clauses = self.render(node.left)
            kept = [s for s in select
                    if _base_attribute(s) in node.attributes]
            return kept or self.select_of(node), source, clauses
        if isinstance(node, (Join, CartesianProduct)):
            left_sel, left_src, left_cl = self.render(node.left)
            right_sel, right_src, right_cl = self.render(node.right)
            if isinstance(node, Join):
                condition = self._render_predicate(node)
                source = f"{left_src} join {right_src} on {condition}"
            else:
                source = f"{left_src}, {right_src}"
            return left_sel + right_sel, source, left_cl + right_cl
        if isinstance(node, GroupBy):
            select, source, clauses = self.render(node.left)
            group = ",".join(
                self.mark(a, node.left)
                for a in sorted(node.group_attributes)
            )
            new_select = [s for s in select
                          if _base_attribute(s) in node.group_attributes]
            for aggregate in node.aggregates:
                new_select.append(self._render_aggregate(node, aggregate))
            return new_select, source, clauses + [f"group by {group}"]
        if isinstance(node, Udf):
            select, source, clauses = self.render(node.left)
            inputs = ",".join(
                self.mark(a, node.left) for a in sorted(node.inputs)
            )
            kept = [s for s in select
                    if _base_attribute(s) not in node.inputs]
            kept.append(
                f"{node.name}({inputs}) as {self.mark(node.output, node)}"
            )
            return kept, source, clauses
        raise DispatchError(f"cannot render node {node!r}")

    def _render_aggregate(self, node: GroupBy, aggregate) -> str:
        attribute = aggregate.attribute
        if attribute is None:
            return f"count(*) as {aggregate.output_name}"
        argument = self.mark(attribute, node.left)
        alias = self.mark(aggregate.output_name, node)
        return f"{aggregate.function}({argument}) as {alias}"

    def _render_predicate(self, node: Selection | Join) -> str:
        """Predicate text with ``^k`` markers on encrypted attributes."""
        if isinstance(node, Selection):
            predicate, operand = node.predicate, node.left
        else:
            predicate, operand = node.condition, None
        text = str(predicate)
        if operand is not None:
            profile = self.profiles[operand]
            encrypted = profile.visible_encrypted
        else:
            encrypted = (self.profiles[node.left].visible_encrypted
                         | self.profiles[node.right].visible_encrypted)
        for attribute in sorted(predicate.attributes(), key=len,
                                reverse=True):
            if attribute in encrypted:
                text = text.replace(attribute, f"{attribute}^k")
        return text

    def _below_group_by(self, node: PlanNode) -> bool:
        """Whether a selection follows a group-by in this same fragment."""
        current = node.left
        while id(current) not in self.fragment.requests:
            if isinstance(current, GroupBy):
                return True
            if isinstance(current, (Encrypt, Decrypt, Projection)):
                current = current.left
                continue
            return False
        return False


def _replace_each(select: list[str], attributes: frozenset[str],
                  renderer) -> list[str]:
    out = []
    for item in select:
        base = _base_attribute(item)
        if base in attributes:
            out.append(renderer(base))
        else:
            out.append(item)
    return out


def _base_attribute(rendered: str) -> str:
    """Best-effort recovery of the attribute a select item refers to."""
    text = rendered.strip()
    if " as " in text:
        text = text.rsplit(" as ", 1)[1]
    text = text.replace("^k", "")
    for opener in ("encrypt(", "decrypt("):
        if text.startswith(opener):
            text = text[len(opener):].split(",", 1)[0]
    if "(" in text and text.endswith(")"):
        text = text.split("(", 1)[1][:-1]
    return text.strip()

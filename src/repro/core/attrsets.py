"""Interned attribute bitsets: the planner's visibility kernel.

The authorization planner evaluates Definition 4.1/4.2 checks and the
minimum-view algebra millions of times on hot multi-provider workloads.
Doing that with ``frozenset`` objects allocates and hashes attribute
strings on every check.  This module interns each attribute name of a
planning session into one bit of a Python :class:`int` so that every
set-algebra step of the paper's model becomes a handful of integer
AND/OR/subset operations:

* :class:`AttributeUniverse` — the interning table.  Each distinct
  attribute name is assigned one bit, lazily, for the lifetime of the
  universe; a ``frozenset[str]`` maps to the OR of its members' bits.
  The universe also memoises conversions of the model's immutable value
  types (:class:`~repro.core.profile.RelationProfile`,
  :class:`~repro.core.authorization.SubjectView`,
  :class:`~repro.core.equivalence.EquivalenceClasses`), so equal values
  share one mask representation.
* :class:`MaskProfile` — a relation profile ``[Rvp, Rve, Rip, Rie, R≃]``
  with every component an ``int`` bitmask (``R≃`` a tuple of masks).  It
  mirrors the Figure 2 algebra of ``RelationProfile`` (``project``,
  ``add_implicit``, ``add_equivalence``, ``combine``, ``encrypt``,
  ``decrypt``) with identical error behaviour, which the property tests
  in ``tests/properties/test_planner_kernel.py`` assert.
* :class:`MaskView` — a subject's overall view ``P_S`` / ``E_S`` as two
  masks.
* :func:`relation_authorized` / :func:`assignee_authorized` — the
  boolean forms of Definitions 4.1 and 4.2, diagnostics-free: condition 1
  is ``(vp | ip) & ~P == 0``, condition 2 is
  ``(ve | ie) & ~(P | E) == 0``, and condition 3 checks each equivalence
  class mask against ``P`` and ``E``.

Interning scheme
----------------
Bits are allocated first-come-first-served and never reassigned, so a
mask created early stays valid as the universe grows.  Masks from
different universes must never be mixed; :class:`MaskProfile` carries its
universe and asserts this on :meth:`MaskProfile.combine`.  A universe is
cheap (two dicts); planners create one per planning session (or per
plan) and throw it away, which also bounds the memoised conversions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.exceptions import ProfileError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.authorization import PolicyDelta, SubjectView
    from repro.core.equivalence import EquivalenceClasses
    from repro.core.profile import RelationProfile


def merge_class_masks(masks: Iterable[int]) -> tuple[int, ...]:
    """Closure of a family of class masks into disjoint classes.

    The mask-level counterpart of the ``EquivalenceClasses`` closure:
    intersecting classes are merged; classes with fewer than two members
    are dropped (singletons are implicit).  The result is sorted for
    canonical equality.
    """
    classes: list[int] = []
    for candidate in masks:
        if not candidate:
            continue
        merged = candidate
        keep: list[int] = []
        for existing in classes:
            if existing & merged:
                merged |= existing
            else:
                keep.append(existing)
        keep.append(merged)
        classes = keep
    return tuple(sorted(m for m in classes if m.bit_count() > 1))


class MaskView:
    """A subject's overall view ``P_S`` / ``E_S`` as two bitmasks."""

    __slots__ = ("plaintext", "encrypted")

    def __init__(self, plaintext: int, encrypted: int) -> None:
        self.plaintext = plaintext
        self.encrypted = encrypted

    def can_view_plaintext(self, bit: int) -> bool:
        """Mask form of :meth:`SubjectView.can_view_plaintext`."""
        return bool(self.plaintext & bit)

    def can_view_encrypted(self, bit: int) -> bool:
        """Mask form of :meth:`SubjectView.can_view_encrypted`."""
        return bool((self.plaintext | self.encrypted) & bit)


class MaskProfile:
    """A relation profile with bitmask components (Definition 3.1).

    ``eq`` holds the non-trivial equivalence classes, one mask each,
    sorted.  All masks are relative to ``universe``.
    """

    __slots__ = ("universe", "vp", "ve", "ip", "ie", "eq")

    def __init__(self, universe: "AttributeUniverse", vp: int = 0,
                 ve: int = 0, ip: int = 0, ie: int = 0,
                 eq: tuple[int, ...] = ()) -> None:
        if vp & ve:
            raise ProfileError(
                "attributes visible both plaintext and encrypted: "
                f"{sorted(universe.names(vp & ve))}"
            )
        self.universe = universe
        self.vp = vp
        self.ve = ve
        self.ip = ip
        self.ie = ie
        self.eq = eq

    # ------------------------------------------------------------------
    # Derived views (mirroring RelationProfile)
    # ------------------------------------------------------------------
    @property
    def visible(self) -> int:
        """``Rvp ∪ Rve`` as a mask."""
        return self.vp | self.ve

    @property
    def implicit(self) -> int:
        """``Rip ∪ Rie`` as a mask."""
        return self.ip | self.ie

    @property
    def plaintext(self) -> int:
        """All plaintext content, visible or implicit."""
        return self.vp | self.ip

    @property
    def encrypted(self) -> int:
        """All encrypted content, visible or implicit."""
        return self.ve | self.ie

    # ------------------------------------------------------------------
    # Figure 2 algebra, mask-backed
    # ------------------------------------------------------------------
    def project(self, keep: int) -> "MaskProfile":
        """Fig. 2 projection row: keep only ``keep`` visible."""
        missing = keep & ~self.visible
        if missing:
            raise ProfileError(
                "projection on attributes not in schema: "
                f"{sorted(self.universe.names(missing))}"
            )
        return MaskProfile(self.universe, self.vp & keep, self.ve & keep,
                           self.ip, self.ie, self.eq)

    def add_implicit(self, added: int) -> "MaskProfile":
        """Move ``added`` into the implicit component (by visible form)."""
        unknown = added & ~self.visible
        if unknown:
            raise ProfileError(
                "cannot mark non-visible attributes implicit: "
                f"{sorted(self.universe.names(unknown))}"
            )
        return MaskProfile(self.universe, self.vp, self.ve,
                           self.ip | (self.vp & added),
                           self.ie | (self.ve & added), self.eq)

    def add_equivalence(self, added: int) -> "MaskProfile":
        """Insert an equivalence class (``R≃ ∪ A``)."""
        if added.bit_count() < 2:
            return self
        return MaskProfile(self.universe, self.vp, self.ve, self.ip,
                           self.ie, merge_class_masks(self.eq + (added,)))

    def combine(self, other: "MaskProfile") -> "MaskProfile":
        """Fig. 2 cartesian-product row: componentwise union."""
        assert self.universe is other.universe, \
            "cannot combine masks from different universes"
        eq = self.eq + other.eq
        return MaskProfile(self.universe, self.vp | other.vp,
                           self.ve | other.ve, self.ip | other.ip,
                           self.ie | other.ie,
                           merge_class_masks(eq) if eq else ())

    def encrypt(self, moved: int) -> "MaskProfile":
        """Fig. 2 encryption row: visible plaintext → visible encrypted."""
        missing = moved & ~self.vp
        if missing:
            raise ProfileError(
                "cannot encrypt attributes not visible plaintext: "
                f"{sorted(self.universe.names(missing))}"
            )
        return MaskProfile(self.universe, self.vp & ~moved,
                           self.ve | moved, self.ip, self.ie, self.eq)

    def decrypt(self, moved: int) -> "MaskProfile":
        """Fig. 2 decryption row: visible encrypted → visible plaintext."""
        missing = moved & ~self.ve
        if missing:
            raise ProfileError(
                "cannot decrypt attributes not visible encrypted: "
                f"{sorted(self.universe.names(missing))}"
            )
        return MaskProfile(self.universe, self.vp | moved,
                           self.ve & ~moved, self.ip, self.ie, self.eq)

    # ------------------------------------------------------------------
    # Conversion and comparison
    # ------------------------------------------------------------------
    def to_profile(self) -> "RelationProfile":
        """The equivalent :class:`RelationProfile` (for tests/round-trips)."""
        from repro.core.equivalence import EquivalenceClasses
        from repro.core.profile import RelationProfile

        names = self.universe.names
        return RelationProfile(
            visible_plaintext=names(self.vp),
            visible_encrypted=names(self.ve),
            implicit_plaintext=names(self.ip),
            implicit_encrypted=names(self.ie),
            equivalences=EquivalenceClasses(names(m) for m in self.eq),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MaskProfile):
            return NotImplemented
        return (self.universe is other.universe and self.vp == other.vp
                and self.ve == other.ve and self.ip == other.ip
                and self.ie == other.ie and self.eq == other.eq)

    def __hash__(self) -> int:
        return hash((self.vp, self.ve, self.ip, self.ie, self.eq))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = self.universe.names
        return (f"MaskProfile(vp={sorted(names(self.vp))}, "
                f"ve={sorted(names(self.ve))}, ip={sorted(names(self.ip))}, "
                f"ie={sorted(names(self.ie))}, "
                f"eq={[sorted(names(m)) for m in self.eq]})")


class AttributeUniverse:
    """Lazy interning of attribute names into bit positions.

    Examples
    --------
    >>> u = AttributeUniverse()
    >>> u.mask(["S", "C"]) == u.bit("S") | u.bit("C")
    True
    >>> sorted(u.names(u.mask(["S", "C"])))
    ['C', 'S']
    """

    __slots__ = ("_bits", "_names", "_profiles", "_views", "_equivalences",
                 "_deltas")

    def __init__(self, attributes: Iterable[str] = ()) -> None:
        self._bits: dict[str, int] = {}
        self._names: list[str] = []
        self._profiles: dict["RelationProfile", MaskProfile] = {}
        self._views: dict["SubjectView", MaskView] = {}
        self._equivalences: dict["EquivalenceClasses", tuple[int, ...]] = {}
        self._deltas: dict[object, int] = {}
        for name in attributes:
            self.bit(name)

    def bit(self, name: str) -> int:
        """The bit of ``name``, interning it on first sight."""
        bit = self._bits.get(name)
        if bit is None:
            bit = 1 << len(self._names)
            self._bits[name] = bit
            self._names.append(name)
        return bit

    def mask(self, names: Iterable[str]) -> int:
        """OR of the bits of ``names``."""
        bits = self._bits
        result = 0
        for name in names:
            bit = bits.get(name)
            if bit is None:
                bit = self.bit(name)
            result |= bit
        return result

    def names(self, mask: int) -> frozenset[str]:
        """The attribute names of the set bits of ``mask``."""
        result = []
        names = self._names
        while mask:
            low = mask & -mask
            result.append(names[low.bit_length() - 1])
            mask ^= low
        return frozenset(result)

    def __len__(self) -> int:
        return len(self._names)

    # ------------------------------------------------------------------
    # Memoised conversions of the model's value types
    # ------------------------------------------------------------------
    def profile_masks(self, profile: "RelationProfile") -> MaskProfile:
        """Mask form of a :class:`RelationProfile` (memoised by value)."""
        cached = self._profiles.get(profile)
        if cached is None:
            cached = MaskProfile(
                self,
                vp=self.mask(profile.visible_plaintext),
                ve=self.mask(profile.visible_encrypted),
                ip=self.mask(profile.implicit_plaintext),
                ie=self.mask(profile.implicit_encrypted),
                eq=self.equivalence_masks(profile.equivalences),
            )
            self._profiles[profile] = cached
        return cached

    def view_masks(self, view: "SubjectView") -> MaskView:
        """Mask form of a :class:`SubjectView` (memoised by value)."""
        cached = self._views.get(view)
        if cached is None:
            cached = MaskView(self.mask(view.plaintext),
                              self.mask(view.encrypted))
            self._views[view] = cached
        return cached

    def equivalence_masks(self, equivalences: "EquivalenceClasses",
                          ) -> tuple[int, ...]:
        """Mask tuple of an :class:`EquivalenceClasses` (memoised)."""
        cached = self._equivalences.get(equivalences)
        if cached is None:
            cached = tuple(sorted(self.mask(c) for c in equivalences))
            self._equivalences[equivalences] = cached
        return cached

    def delta_mask(self, delta: "PolicyDelta") -> int:
        """Touched-attribute mask of a policy delta (memoised).

        Deltas are frozen dataclasses, so memoising by the delta object
        itself is safe; journals are bounded, which bounds this memo.
        """
        cached = self._deltas.get(delta)
        if cached is None:
            cached = self.mask(delta.touched)
            self._deltas[delta] = cached
        return cached


def deltas_touch_masked(universe: AttributeUniverse,
                        deltas: "Iterable[PolicyDelta]",
                        subjects: "frozenset[str] | set[str]",
                        attr_mask: int | None = None) -> bool:
    """Whether any delta may change how ``subjects`` see ``attr_mask``.

    The mask-level form of :meth:`PolicyDelta.touches`: a delta is
    relevant when its subject matches (``ANY`` matches every subject)
    and, if ``attr_mask`` is given, its touched mask intersects it.
    Conservative by construction — ``False`` guarantees the restricted
    views are identical across every delta in the stream.
    """
    for delta in deltas:
        if not delta.any_subject and delta.subject not in subjects:
            continue
        if attr_mask is None or universe.delta_mask(delta) & attr_mask:
            return True
    return False


def relation_authorized(view: MaskView, profile: MaskProfile) -> bool:
    """Definition 4.1 as pure integer operations (no diagnostics).

    Condition 1: ``Rvp ∪ Rip ⊆ P_S``; condition 2:
    ``Rve ∪ Rie ⊆ P_S ∪ E_S``; condition 3: every equivalence class is
    uniformly visible (within ``P_S`` or within ``E_S``).
    """
    plaintext = view.plaintext
    if (profile.vp | profile.ip) & ~plaintext:
        return False
    if (profile.ve | profile.ie) & ~(plaintext | view.encrypted):
        return False
    encrypted = view.encrypted
    for eq_class in profile.eq:
        if eq_class & ~plaintext and eq_class & ~encrypted:
            return False
    return True


def assignee_authorized(view: MaskView,
                        operand_profiles: Iterable[MaskProfile],
                        result_profile: MaskProfile) -> bool:
    """Definition 4.2 as pure integer operations (no diagnostics)."""
    for operand in operand_profiles:
        if not relation_authorized(view, operand):
            return False
    return relation_authorized(view, result_profile)

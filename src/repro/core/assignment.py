"""Cost-based assignment of operations to candidates (§6–§7).

Implements the five-step pipeline of §6:

1. post-order visit computing the candidate sets Λ (Definition 5.3);
2. choice of an assignment λ ∈ Λ minimizing economic cost — a dynamic
   program over (node, subject) states, the strategy the paper's tool
   uses ("our implementation is based on a dynamic programming strategy
   to explore the possible assignments of candidates to operators");
3. post-order plan extension with encryption/decryption (Definition 5.4);
4. key establishment (Definition 6.1);
5. (dispatch lives in :mod:`repro.core.dispatch`).

As §6 notes for non-negligible encryption costs, steps 2–3 are combined:
the DP's edge costs price the encryption/decryption work implied by each
(child subject, parent subject) pair, so scheme costs steer the choice.
The reported cost is always the exact cost of the materialized extended
plan.

Alternative strategies (greedy, exhaustive) are provided for the
ablation benchmarks.

Performance
-----------
The DP runs in two implementations selected by ``search_impl``:

* ``"fast"`` (default) — the decomposed, memoized search.  For every
  plan edge the pairwise ``edge_cost`` is split into per-receiver tables
  (scheme choice, encryption weights, decrypt baseline) and a per-sender
  bitmask memo (overlap corrections), so the DP inner loop over
  (child subject, parent subject) pairs costs a few multiply-adds
  instead of re-deriving frozenset algebra per pair.  ``node_cost`` and
  the per-edge tables are shared across the three portfolio passes.
* ``"reference"`` — the direct per-pair computation the fast path was
  derived from, kept for the scalability benchmark
  (``benchmarks/bench_assignment_scalability.py``) and the equivalence
  property tests.  Both implementations price the same model, so they
  pick cost-identical assignments.

Repeated queries over a stable policy can additionally pass an
:class:`~repro.core.plancache.AssignmentCache`, which memoises full
results keyed by the plan fingerprint and the policy version.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from repro.core.attrsets import AttributeUniverse
from repro.core.authorization import Policy, Subject, SubjectView
from repro.core.candidates import (
    CandidateAssignment,
    MinimumViewProfiles,
    compute_candidates,
    user_can_receive_result,
)
from repro.core.plan import NodeMap
from repro.core.plancache import (
    AssignmentCache,
    assignment_cache_key,
    plan_dependencies,
)
from repro.core.extension import ExtendedPlan, minimally_extend
from repro.core.keys import (
    KeyAssignment,
    establish_keys,
    schemes_for_extended_plan,
)
from repro.core.lineage import augment_view, derived_lineage
from repro.core.operators import BaseRelationNode, PlanNode
from repro.core.plan import QueryPlan
from repro.core.predicates import EncryptedCapability
from repro.core.requirements import (
    EncryptionScheme,
    SchemeCapabilities,
    _node_demands,
    chosen_schemes,
    infer_plaintext_requirements,
)
from repro.cost.estimator import NodeEstimate, PlanEstimator
from repro.cost.factors import (
    DECRYPT_SECONDS_PER_VALUE,
    ENCRYPT_SECONDS_PER_VALUE,
    encrypted_width,
)
from repro.cost.model import CostBreakdown, CostModel
from repro.cost.network import NetworkTopology
from repro.cost.pricing import PriceList
from repro.exceptions import NoCandidateError, UnauthorizedError

_GB = 1e9


@dataclass
class AssignmentResult:
    """Everything produced by the assignment pipeline.

    ``search_stats`` is populated by the exhaustive strategy (combination
    counts, pruning, and unauthorized skips); ``None`` otherwise.
    """

    assignment: dict[PlanNode, str]
    extended: ExtendedPlan
    keys: KeyAssignment
    cost: CostBreakdown
    candidates: CandidateAssignment
    search_stats: dict[str, int] | None = None
    #: The losing §6 portfolio proposals (fully extended, keyed, and
    #: costed), cheapest first.  The service layer keeps these as warm
    #: standby plans: when a provider in the chosen assignment dies
    #: mid-query, a standby that avoids it can be dispatched without
    #: re-planning.  Empty for single-proposal strategies.
    portfolio: tuple["AssignmentResult", ...] = ()

    def assignee(self, node: PlanNode) -> str:
        """Chosen subject for an original-plan operation.

        Plan nodes hash by identity, so this is a live O(1) lookup in
        the public ``assignment`` dict.
        """
        subject = self.assignment.get(node)
        if subject is None:
            raise UnauthorizedError(f"no assignee recorded for {node.label()}")
        return subject

    def describe(self) -> str:
        """Assignment summary plus the cost line."""
        lines = [self.extended.describe(), self.cost.describe()]
        return "\n".join(lines)


def assign(
    plan: QueryPlan,
    policy: Policy,
    subjects: Iterable[Subject | str],
    prices: PriceList,
    user: str,
    owners: Mapping[str, str] | None = None,
    topology: NetworkTopology | None = None,
    requirements: Mapping[PlanNode, frozenset[str]] | None = None,
    capabilities: SchemeCapabilities | None = None,
    strategy: str = "dp",
    search_impl: str = "fast",
    cache: AssignmentCache | None = None,
    edge_cache: "EdgeTableCache | None" = None,
    candidates: "CandidateAssignment | Callable[[], CandidateAssignment] "
                "| None" = None,
) -> AssignmentResult:
    """Run the full §6 pipeline and return the cheapest authorized plan.

    ``search_impl`` selects the DP implementation: ``"fast"`` (decomposed
    memoized tables, the default) or ``"reference"`` (the direct per-pair
    computation, kept for benchmarking).  ``cache`` optionally memoises
    full results across calls: hits require an identical plan structure
    and the same live policy/price-list/topology objects, and survive
    policy mutations whose deltas do not touch the plan's dependency
    footprint (see :mod:`repro.core.plancache`).  ``edge_cache`` shares
    decomposed DP edge tables across queries.  ``candidates`` supplies a
    precomputed (or incrementally maintained) Λ — pass a callable to
    compute it lazily, only on a cache miss.  Cached results are shared,
    not copied.

    Raises :class:`NoCandidateError` when some operation has no candidate
    and :class:`UnauthorizedError` when the querying user may not receive
    the query result.
    """
    if search_impl not in ("fast", "reference"):
        raise ValueError(f"unknown search_impl {search_impl!r}")
    subject_names = [
        s.name if isinstance(s, Subject) else s for s in subjects
    ]
    if requirements is None:
        requirements = infer_plaintext_requirements(plan, capabilities)
    cache_key = None
    depends = None
    if cache is not None:
        cache_key = assignment_cache_key(
            plan, policy, subject_names, user, owners,
            f"{strategy}:{search_impl}", capabilities, requirements,
        )
        cache_context = (policy, prices, topology)
        depends = plan_dependencies(plan, subject_names, user, owners)
        hit = cache.get(cache_key, cache_context, policy=policy)
        if hit is not None:
            return _rebind_result(hit, plan)
    if candidates is None:
        candidates = compute_candidates(plan, policy, subject_names,
                                        requirements)
    elif callable(candidates):
        candidates = candidates()
    candidates.require_nonempty()
    if not user_can_receive_result(plan, policy, user, candidates.min_views):
        raise UnauthorizedError(
            f"user {user} is not authorized for the query result",
            subject=user,
        )

    schemes = chosen_schemes(plan, capabilities)
    topology = topology or NetworkTopology.paper_defaults(user)
    estimator = PlanEstimator(schemes)
    model = CostModel(prices, topology, estimator)
    if edge_cache is not None:
        edge_cache.begin(policy)
    searcher = _AssignmentSearch(
        plan=plan,
        policy=policy,
        candidates=candidates,
        requirements=requirements,
        schemes=schemes,
        prices=prices,
        estimator=estimator,
        owners=dict(owners or {}),
        user=user,
        search_impl=search_impl,
        edge_cache=edge_cache,
    )
    proposals: list[dict[PlanNode, str]] = []
    if strategy == "dp":
        # Portfolio: the DP's pairwise costs cannot see assignment-
        # dependent scheme choices exactly (§6's combined steps 2–3), so
        # propose optimistic and conservative searches plus the
        # no-provider baseline, then compare *exact* extended-plan costs.
        for mode in ("optimistic", "conservative"):
            searcher.edge_scheme_mode = mode
            try:
                proposals.append(searcher.dynamic_programming())
            except NoCandidateError:
                pass
        trusted = frozenset({user}) | frozenset((owners or {}).values())
        searcher.edge_scheme_mode = "optimistic"
        try:
            proposals.append(searcher.dynamic_programming(
                restrict_to=trusted))
        except NoCandidateError:
            pass
        if not proposals:
            raise NoCandidateError("no feasible assignment for the plan")
    elif strategy == "greedy":
        proposals.append(searcher.greedy())
    elif strategy == "exhaustive":
        proposals.append(searcher.exhaustive(model))
    else:
        raise ValueError(f"unknown assignment strategy {strategy!r}")

    best: AssignmentResult | None = None
    results: list[AssignmentResult] = []
    for assignment in proposals:
        extended = minimally_extend(
            plan, policy, assignment, requirements=requirements,
            owners=owners, deliver_to=user,
        )
        # §6: schemes depend on the chosen assignment — attributes
        # encrypted purely in transit get randomized encryption; only
        # attributes some assignee computes on encrypted need
        # det/OPE/Paillier.
        exact_schemes = schemes_for_extended_plan(extended, capabilities,
                                                  policy)
        keys = establish_keys(extended, policy, schemes=exact_schemes)
        exact_model = CostModel(prices, topology,
                                PlanEstimator(exact_schemes))
        cost = exact_model.extended_plan_cost(extended, user, owners)
        result = AssignmentResult(
            assignment=assignment,
            extended=extended,
            keys=keys,
            cost=cost,
            candidates=candidates,
            search_stats=searcher.exhaustive_stats,
        )
        results.append(result)
        if best is None or cost.total_usd < best.cost.total_usd:
            best = result
    assert best is not None
    # Distinct losing proposals become warm standby plans (failover).
    seen_assignments = [best.assignment]
    for result in sorted(results, key=lambda r: r.cost.total_usd):
        if result is best or result.assignment in seen_assignments:
            continue
        seen_assignments.append(result.assignment)
        best.portfolio += (result,)
    if cache is not None and cache_key is not None:
        cache.put(cache_key, cache_context, best, policy=policy,
                  depends=depends)
    return best


def _rebind_result(result: AssignmentResult,
                   plan: QueryPlan) -> AssignmentResult:
    """Re-key a cached result onto a structurally identical plan.

    Cache hits may come from a different (structurally equal) plan
    object — the multi-tenant repeat-query scenario re-parses the same
    query into fresh nodes.  The matching fingerprint guarantees the
    post-order node sequences align one-to-one, so every node-keyed
    structure (assignment, candidate sets, minimum-view profiles,
    requirements) is remapped positionally onto the caller's nodes.  The
    extended plan is self-contained (its nodes are created by the
    extension, never shared with the input plan) and is reused as-is.
    """
    cached_plan = result.candidates.plan
    if cached_plan.root is plan.root:
        return result
    old_nodes = cached_plan.nodes()
    new_nodes = plan.nodes()
    assert len(old_nodes) == len(new_nodes), "fingerprint collision"
    old_min = result.candidates.min_views
    requirement_map: NodeMap[frozenset[str]] = NodeMap(old_min.requirements)
    assignment: dict[PlanNode, str] = {}
    requirements: dict[PlanNode, frozenset[str]] = {}
    results: dict[int, object] = {}
    operand_views: dict[int, tuple] = {}
    candidate_sets: dict[int, frozenset[str]] = {}
    for old, new in zip(old_nodes, new_nodes):
        subject = result.assignment.get(old)
        if subject is not None:
            assignment[new] = subject
        needed = requirement_map.get(old)
        if needed is not None:
            requirements[new] = needed
        profile = old_min.results.get(id(old))
        if profile is not None:
            results[id(new)] = profile
        views = old_min.operand_views.get(id(old))
        if views is not None:
            operand_views[id(new)] = views
    for old_op, new_op in zip(cached_plan.operations(), plan.operations()):
        candidate_sets[id(new_op)] = result.candidates[old_op]
    min_views = MinimumViewProfiles(
        plan=plan,
        requirements=requirements,
        results=results,
        operand_views=operand_views,
    )
    return AssignmentResult(
        assignment=assignment,
        extended=result.extended,
        keys=result.keys,
        cost=result.cost,
        candidates=CandidateAssignment(plan, candidate_sets, min_views),
        search_stats=result.search_stats,
        # Standbys are self-contained (extended plan + keys only are
        # consumed on failover), so no rebinding is needed for them.
        portfolio=result.portfolio,
    )


class _AssignmentSearch:
    """Shared machinery of the three assignment strategies."""

    def __init__(self, plan: QueryPlan, policy: Policy,
                 candidates: CandidateAssignment,
                 requirements: Mapping[PlanNode, frozenset[str]],
                 schemes: Mapping[str, EncryptionScheme],
                 prices: PriceList, estimator: PlanEstimator,
                 owners: dict[str, str], user: str,
                 search_impl: str = "fast",
                 edge_cache: "EdgeTableCache | None" = None) -> None:
        self.plan = plan
        self.policy = policy
        self.candidates = candidates
        self.requirements = requirements
        self.schemes = schemes
        self.prices = prices
        self.estimator = estimator
        self.owners = owners
        self.user = user
        self.search_impl = search_impl
        self.edge_cache = edge_cache
        self.estimates = estimator.estimate(plan)
        self._lineage = derived_lineage(plan)
        self._views: dict[str, SubjectView] = {}
        self._requirement_map: NodeMap[frozenset[str]] = NodeMap(requirements)
        # Fast-path state, shared across the three portfolio passes.
        # With a cross-query edge cache, masks live in *its* universe so
        # cached tables and this search's subject masks stay congruent.
        self.universe = edge_cache.universe if edge_cache is not None \
            else AttributeUniverse()
        self._subject_masks: dict[str, tuple[int, int, float, float]] = {}
        self._node_cost_cache: dict[tuple[int, str], float] = {}
        self._edge_tables: dict[tuple[int, int, str], _EdgeTable] = {}
        self._delivery_cache: dict[str, float] = {}
        #: populated by :meth:`exhaustive`.
        self.exhaustive_stats: dict[str, int] | None = None

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def view(self, subject: str) -> SubjectView:
        if subject not in self._views:
            self._views[subject] = augment_view(
                self.policy.view(subject), self._lineage
            )
        return self._views[subject]

    def owner_of(self, leaf: BaseRelationNode) -> str:
        name = leaf.relation.name
        return self.owners.get(name, f"authority:{name}")

    def plaintext_needed(self, node: PlanNode) -> frozenset[str]:
        return self._requirement_map.get(node, frozenset())

    def subject_masks(self, name: str) -> tuple[int, int, float, float]:
        """(plaintext mask, encrypted mask, cpu $/s, net $/byte) of a subject.

        Synthetic ``authority:`` owners have no policy view and encrypt
        nothing of their own (mirroring the reference path's ``None``
        sender view).
        """
        data = self._subject_masks.get(name)
        if data is None:
            rates = self.prices.rates(name)
            if name.startswith("authority:"):
                plain = encrypted = 0
            else:
                view = self.view(name)
                plain = self.universe.mask(view.plaintext)
                encrypted = self.universe.mask(view.encrypted)
            data = (plain, encrypted, rates.cpu_usd_per_second,
                    rates.net_usd_per_gb / _GB)
            self._subject_masks[name] = data
        return data

    def edge_table(self, child: PlanNode, parent: PlanNode) -> "_EdgeTable":
        """The decomposed cost tables of one plan edge (memoized per mode).

        With an :class:`EdgeTableCache` attached, structurally matching
        edges of other queries share the table; the cache reconciles its
        receiver rows against policy deltas and the identity check in
        :meth:`_EdgeTable.receiver` guards everything else.
        """
        key = (id(child), id(parent), self.edge_scheme_mode)
        table = self._edge_tables.get(key)
        if table is None:
            estimate = self.estimates[id(child)]
            operand_attrs = parent.operand_attributes()
            ap_attrs = self.plaintext_needed(parent)
            if self.edge_cache is not None:
                table = self.edge_cache.table(
                    estimate, operand_attrs, ap_attrs, self.schemes,
                    self.edge_scheme_mode,
                )
            else:
                table = _EdgeTable(self.universe, estimate, operand_attrs,
                                   ap_attrs, self.schemes,
                                   self.edge_scheme_mode)
            table.masks_of = self.subject_masks
            self._edge_tables[key] = table
        return table

    #: edge-scheme estimation mode: "optimistic" charges randomized
    #: encryption for pass-through attributes (underestimates deep
    #: chains), "conservative" always charges the demand-based scheme
    #: (overestimates transit-only encryption).  The portfolio strategy
    #: tries both and compares exact costs.
    edge_scheme_mode = "optimistic"

    def _edge_scheme(self, attribute: str, parent: PlanNode,
                     receiver: str) -> EncryptionScheme:
        """Scheme charged when encrypting ``attribute`` for ``parent``.

        A receiver authorized for the attribute's plaintext computes in
        the clear (note 2 / opportunistic decryption), so transit needs
        only randomized encryption.  Otherwise, attributes the parent
        operation computes on need the scheme their capability demands;
        attributes merely passing through need only randomized encryption
        (§6's highest-protection rule).
        """
        if self.view(receiver).can_view_plaintext(attribute):
            return EncryptionScheme.RANDOMIZED
        if self.edge_scheme_mode == "conservative" \
                or attribute in parent.operand_attributes():
            return self.schemes.get(attribute,
                                    EncryptionScheme.DETERMINISTIC)
        return EncryptionScheme.RANDOMIZED

    def _crypto_seconds(self, attributes: Iterable[str], rows: float,
                        table: Mapping[EncryptionScheme, float],
                        parent: PlanNode | None = None,
                        receiver: str | None = None) -> float:
        seconds = 0.0
        for attribute in attributes:
            if parent is not None and receiver is not None:
                scheme = self._edge_scheme(attribute, parent, receiver)
            else:
                scheme = self.schemes.get(attribute,
                                          EncryptionScheme.DETERMINISTIC)
            seconds += rows * table[scheme]
        return seconds

    def edge_cost(self, child: PlanNode, sender: str,
                  parent: PlanNode, receiver: str) -> float:
        """Approximate cost of handing ``child``'s output to ``receiver``.

        Covers: encryption at the sender of visible attributes the
        receiver may only see encrypted (skipping attributes the sender
        itself already held encrypted), the network transfer of the
        (partially encrypted) output, and decryption at the receiver of
        attributes the parent operation needs in plaintext.
        """
        estimate = self.estimates[id(child)]
        receiver_view = self.view(receiver)
        visible = frozenset(estimate.plain_width)
        needs_encrypted = receiver_view.encrypted & visible
        sender_view = self.view(sender) if not sender.startswith(
            "authority:") else None
        already_encrypted = (sender_view.encrypted & visible
                             if sender_view is not None else frozenset())
        to_encrypt = needs_encrypted - already_encrypted
        enc_seconds = self._crypto_seconds(
            to_encrypt, estimate.rows, ENCRYPT_SECONDS_PER_VALUE,
            parent=parent, receiver=receiver,
        )
        cost = enc_seconds * self.prices.rates(sender).cpu_usd_per_second

        edge_schemes = {
            attribute: self._edge_scheme(attribute, parent, receiver)
            for attribute in visible
        }
        volume = estimate.bytes_if_encrypted(
            needs_encrypted | already_encrypted, edge_schemes
        )
        if sender != receiver:
            cost += volume / _GB * self.prices.rates(sender).net_usd_per_gb

        to_decrypt = self.plaintext_needed(parent) & frozenset(
            needs_encrypted | already_encrypted
        )
        dec_seconds = self._crypto_seconds(
            to_decrypt, estimate.rows, DECRYPT_SECONDS_PER_VALUE
        )
        cost += dec_seconds * self.prices.rates(receiver).cpu_usd_per_second
        return cost

    def node_cost(self, node: PlanNode, subject: str) -> float:
        """CPU + IO cost of executing ``node`` at ``subject`` (memoized)."""
        key = (id(node), subject)
        cost = self._node_cost_cache.get(key)
        if cost is None:
            cost = self._node_cost_raw(node, subject)
            self._node_cost_cache[key] = cost
        return cost

    def _node_cost_raw(self, node: PlanNode, subject: str) -> float:
        """Uncached :meth:`node_cost` (the reference path's code)."""
        estimate = self.estimates[id(node)]
        rates = self.prices.rates(subject)
        return (estimate.cpu_seconds * rates.cpu_usd_per_second
                + estimate.io_bytes / _GB * rates.io_usd_per_gb
                + self._scheme_penalty(node, subject))

    def _scheme_penalty(self, node: PlanNode, subject: str) -> float:
        """Extra cost implied by running ``node`` at ``subject`` encrypted.

        §6 combines assignment and extension: assigning an addition- or
        order-demanding operation to a subject without plaintext
        visibility forces Paillier/OPE encryption upstream (and expensive
        decryption of the results downstream).  The penalty charges the
        scheme upgrade over randomized encryption at the operand
        cardinality, priced at the authority rate (the sources encrypt),
        plus the user-side decryption of the outputs.
        """
        view = self.view(subject)
        operand_rows = sum(
            self.estimates[id(child)].rows for child in node.children
        )
        authority_rate = max(
            (self.prices.rates(owner).cpu_usd_per_second
             for owner in self.owners.values()),
            default=self.prices.rates(self.user).cpu_usd_per_second,
        )
        penalty = 0.0
        for attribute, capability in _node_demands(node):
            if capability not in (EncryptedCapability.ADDITION,
                                  EncryptedCapability.ORDER):
                continue
            if view.can_view_plaintext(attribute):
                # Opportunistic decryption: a cheap randomized decrypt.
                penalty += (
                    operand_rows
                    * DECRYPT_SECONDS_PER_VALUE[EncryptionScheme.RANDOMIZED]
                    * self.prices.rates(subject).cpu_usd_per_second
                )
                continue
            scheme = (EncryptionScheme.PAILLIER
                      if capability is EncryptedCapability.ADDITION
                      else EncryptionScheme.OPE)
            upgrade = (ENCRYPT_SECONDS_PER_VALUE[scheme]
                       - ENCRYPT_SECONDS_PER_VALUE[
                           EncryptionScheme.RANDOMIZED])
            penalty += operand_rows * upgrade * authority_rate
            output_rows = self.estimates[id(node)].rows
            penalty += (
                output_rows * DECRYPT_SECONDS_PER_VALUE[scheme]
                * self.prices.rates(self.user).cpu_usd_per_second
            )
        return penalty

    def delivery_cost(self, root_subject: str) -> float:
        """Ship the result to the user and decrypt what arrives encrypted."""
        estimate = self.estimates[id(self.plan.root)]
        cost = 0.0
        if root_subject != self.user:
            cost += (estimate.output_bytes / _GB
                     * self.prices.rates(root_subject).net_usd_per_gb)
        visible = frozenset(estimate.plain_width)
        encrypted_at_root = self.view(root_subject).encrypted & visible
        dec_seconds = self._crypto_seconds(
            encrypted_at_root, estimate.rows, DECRYPT_SECONDS_PER_VALUE
        )
        cost += dec_seconds * self.prices.rates(self.user).cpu_usd_per_second
        return cost

    def _delivery_cost_cached(self, root_subject: str) -> float:
        """Memoized :meth:`delivery_cost` (mode-independent)."""
        cost = self._delivery_cache.get(root_subject)
        if cost is None:
            cost = self.delivery_cost(root_subject)
            self._delivery_cache[root_subject] = cost
        return cost

    # ------------------------------------------------------------------
    # Strategies
    # ------------------------------------------------------------------
    def dynamic_programming(self, restrict_to: frozenset[str] | None = None,
                            ) -> dict[PlanNode, str]:
        """Optimal assignment under the pairwise cost approximation.

        ``restrict_to`` limits the considered subjects (used by the
        portfolio to evaluate the no-provider baseline).  Raises
        :class:`NoCandidateError` when the restriction empties some
        operation's candidate set.  Dispatches on ``search_impl``; both
        implementations price the same model and pick cost-identical
        assignments.
        """
        if self.search_impl == "reference":
            return self._dp_reference(restrict_to)
        return self._dp_fast(restrict_to)

    def _dp_fast(self, restrict_to: frozenset[str] | None = None,
                 ) -> dict[PlanNode, str]:
        """Decomposed, memoized DP: edge costs come from per-edge tables.

        The inner (child subject, parent subject) loop is inlined: per
        edge, the sender rows (name, accumulated cost, encrypted mask,
        rates) are materialised once and each pair evaluation is a
        table/memo lookup plus three multiply-adds.
        """
        table: dict[int, dict[str, float]] = {}
        choice: dict[int, dict[str, dict[int, str]]] = {}

        for node in self.plan.operations():
            table[id(node)] = {}
            choice[id(node)] = {}
            allowed = self.candidates[node]
            if restrict_to is not None:
                allowed = allowed & restrict_to
                if not allowed:
                    raise NoCandidateError(
                        f"restriction leaves no candidate for {node.label()}",
                        node=node,
                    )
            # Per child: the edge tables plus one row per sender —
            # (name, cost so far, encrypted mask, cpu $/s, net $/byte).
            children_info = []
            for child in node.children:
                edge = self.edge_table(child, node)
                if isinstance(child, BaseRelationNode):
                    owner = self.owner_of(child)
                    _p, enc_mask, cpu, net = self.subject_masks(owner)
                    rows = [(owner, self.node_cost(child, owner),
                             enc_mask, cpu, net)]
                    children_info.append((child, edge, True, rows))
                else:
                    rows = [
                        (sender, cost) + self.subject_masks(sender)[1:]
                        for sender, cost in table[id(child)].items()
                    ]
                    children_info.append((child, edge, False, rows))
            for subject in sorted(allowed):
                total = self.node_cost(node, subject)
                picks: dict[int, str] = {}
                feasible = True
                for child, edge, is_leaf, rows in children_info:
                    entry = edge.receiver(subject)
                    memo = entry.memo
                    memo_parts = edge.memo_parts
                    needs_volume = edge.base_bytes + entry.vol_needs_bytes
                    total_enc = entry.total_enc_seconds
                    receiver_dec = entry.cpu_rate
                    dec_base = entry.dec_base_seconds
                    visible = edge.visible_mask
                    best_cost = None
                    best_subject = None
                    for sender, cost, enc_mask, cpu, net in rows:
                        mask = enc_mask & visible
                        parts = memo.get(mask)
                        if parts is None:
                            parts = memo_parts(entry, mask)
                        cost += cpu * (total_enc - parts[0])
                        if sender != subject:
                            cost += (needs_volume + parts[1]) * net
                        cost += receiver_dec * (dec_base + parts[2])
                        if best_cost is None or cost < best_cost:
                            best_cost = cost
                            best_subject = sender
                    if best_subject is None:
                        feasible = False
                        break
                    total += best_cost
                    if not is_leaf:
                        picks[id(child)] = best_subject
                if feasible:
                    table[id(node)][subject] = total
                    choice[id(node)][subject] = picks

        root = self.plan.root
        root_costs = {
            subject: cost + self._delivery_cost_cached(subject)
            for subject, cost in table[id(root)].items()
        }
        if not root_costs:
            raise NoCandidateError(
                "no feasible assignment for the plan root", node=root
            )
        best_root = min(root_costs, key=root_costs.__getitem__)

        assignment: dict[PlanNode, str] = {}

        def backtrack(node: PlanNode, subject: str) -> None:
            assignment[node] = subject
            for child in node.children:
                if isinstance(child, BaseRelationNode):
                    continue
                backtrack(child, choice[id(node)][subject][id(child)])

        backtrack(root, best_root)
        return assignment

    def _dp_reference(self, restrict_to: frozenset[str] | None = None,
                      ) -> dict[PlanNode, str]:
        """The direct per-pair DP (pre-decomposition code path)."""
        table: dict[int, dict[str, float]] = {}
        choice: dict[int, dict[str, dict[int, str]]] = {}

        for node in self.plan.operations():
            table[id(node)] = {}
            choice[id(node)] = {}
            allowed = self.candidates[node]
            if restrict_to is not None:
                allowed = allowed & restrict_to
                if not allowed:
                    raise NoCandidateError(
                        f"restriction leaves no candidate for {node.label()}",
                        node=node,
                    )
            for subject in allowed:
                total = self._node_cost_raw(node, subject)
                picks: dict[int, str] = {}
                feasible = True
                for child in node.children:
                    if isinstance(child, BaseRelationNode):
                        owner = self.owner_of(child)
                        total += self._node_cost_raw(child, owner)
                        total += self.edge_cost(child, owner, node, subject)
                        continue
                    best_cost = None
                    best_subject = None
                    for child_subject, child_cost in table[id(child)].items():
                        candidate_cost = child_cost + self.edge_cost(
                            child, child_subject, node, subject
                        )
                        if best_cost is None or candidate_cost < best_cost:
                            best_cost = candidate_cost
                            best_subject = child_subject
                    if best_subject is None:
                        feasible = False
                        break
                    total += best_cost
                    picks[id(child)] = best_subject
                if feasible:
                    table[id(node)][subject] = total
                    choice[id(node)][subject] = picks

        root = self.plan.root
        root_costs = {
            subject: cost + self.delivery_cost(subject)
            for subject, cost in table[id(root)].items()
        }
        if not root_costs:
            raise NoCandidateError(
                "no feasible assignment for the plan root", node=root
            )
        best_root = min(root_costs, key=root_costs.__getitem__)

        assignment: dict[PlanNode, str] = {}

        def backtrack(node: PlanNode, subject: str) -> None:
            assignment[node] = subject
            for child in node.children:
                if isinstance(child, BaseRelationNode):
                    continue
                backtrack(child, choice[id(node)][subject][id(child)])

        backtrack(root, best_root)
        return assignment

    def greedy(self) -> dict[PlanNode, str]:
        """Cheapest-subject-per-node baseline (ignores edge effects)."""
        assignment: dict[PlanNode, str] = {}
        for node in self.plan.operations():
            names = self.candidates[node]
            if not names:
                raise NoCandidateError(
                    f"no candidate for {node.label()}", node=node
                )
            assignment[node] = min(
                names, key=lambda s: (self.node_cost(node, s), s)
            )
        return assignment

    def exhaustive(self, model: CostModel) -> dict[PlanNode, str]:
        """Exact search: materialize assignments, pruning by lower bound.

        A depth-first enumeration over the candidate domains.  Every
        node's exact extended-plan cost is bounded below by its CPU
        charge at its assignee (encryption only *adds* operations and
        never shrinks rows), so a partial assignment whose accumulated
        CPU bound plus the best-case bound of the remaining operations
        already meets the incumbent cannot improve on it and its whole
        subtree is pruned.  Combinations whose minimal extension raises
        :class:`UnauthorizedError` (assignments outside Λ's reachable
        extensions) are counted, not silently dropped; the counts are
        reported in :attr:`exhaustive_stats` and in the
        :class:`NoCandidateError` raised when nothing is feasible.
        """
        operations = list(self.plan.operations())
        domains = [sorted(self.candidates[n]) for n in operations]
        combination_count = 1
        for domain in domains:
            combination_count *= len(domain)
        if combination_count > 50_000:
            raise NoCandidateError(
                f"exhaustive search infeasible: {combination_count} "
                f"assignments"
            )
        stats = {
            "combinations": combination_count,
            "evaluated": 0,
            "pruned": 0,
            "skipped_unauthorized": 0,
        }
        self.exhaustive_stats = stats

        def cpu_bound(node: PlanNode, subject: str) -> float:
            return (self.estimates[id(node)].cpu_seconds
                    * self.prices.rates(subject).cpu_usd_per_second)

        # CPU charged to the data authorities is combination-independent.
        leaf_floor = sum(
            cpu_bound(leaf, self.owner_of(leaf))
            for leaf in self.plan.leaves()
        )
        bounds = [
            {subject: cpu_bound(node, subject) for subject in domain}
            for node, domain in zip(operations, domains)
        ]
        suffix_floor = [0.0] * (len(operations) + 1)
        for index in range(len(operations) - 1, -1, -1):
            suffix_floor[index] = (suffix_floor[index + 1]
                                   + min(bounds[index].values()))
        subtree_size = [1] * (len(operations) + 1)
        for index in range(len(operations) - 1, -1, -1):
            subtree_size[index] = (subtree_size[index + 1]
                                   * len(domains[index]))

        best_cost: float | None = None
        best_assignment: dict[PlanNode, str] | None = None
        chosen: list[str] = []

        def visit(index: int, floor: float) -> None:
            nonlocal best_cost, best_assignment
            if best_cost is not None \
                    and floor + suffix_floor[index] >= best_cost:
                stats["pruned"] += subtree_size[index]
                return
            if index == len(operations):
                assignment = dict(zip(operations, chosen))
                try:
                    extended = minimally_extend(
                        self.plan, self.policy, assignment,
                        requirements=self.requirements, owners=self.owners,
                        deliver_to=self.user,
                    )
                except UnauthorizedError:
                    stats["skipped_unauthorized"] += 1
                    return
                stats["evaluated"] += 1
                cost = model.extended_plan_cost(
                    extended, self.user, self.owners
                ).total_usd
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best_assignment = assignment
                return
            for subject in domains[index]:
                chosen.append(subject)
                visit(index + 1, floor + bounds[index][subject])
                chosen.pop()

        visit(0, leaf_floor)
        if best_assignment is None:
            raise NoCandidateError(
                "no authorized assignment exists "
                f"({stats['skipped_unauthorized']} combinations skipped as "
                f"unauthorized, {stats['pruned']} pruned)"
            )
        return best_assignment


class _ReceiverEntry:
    """Per-(edge, receiver) precomputation of the decomposed edge cost.

    ``identity`` records the (plain mask, enc mask, cpu rate) the entry
    was built from; :meth:`_EdgeTable.receiver` rebuilds the entry when
    the subject's current masks no longer match, which makes cached
    tables safe across policy and price changes by construction.
    """

    __slots__ = ("needs_mask", "enc_w", "delta_w", "total_enc_seconds",
                 "vol_needs_bytes", "dec_base_seconds", "cpu_rate",
                 "identity", "memo")

    def __init__(self, needs_mask: int, enc_w: dict[int, float],
                 delta_w: dict[int, float], total_enc_seconds: float,
                 vol_needs_bytes: float, dec_base_seconds: float,
                 cpu_rate: float,
                 identity: tuple[int, int, float]) -> None:
        self.needs_mask = needs_mask
        self.enc_w = enc_w
        self.delta_w = delta_w
        self.total_enc_seconds = total_enc_seconds
        self.vol_needs_bytes = vol_needs_bytes
        self.dec_base_seconds = dec_base_seconds
        self.cpu_rate = cpu_rate
        self.identity = identity
        #: sender-encrypted-mask → (enc overlap s, extra volume B, extra dec s)
        self.memo: dict[int, tuple[float, float, float]] = {}


class _EdgeTable:
    """Decomposed :meth:`_AssignmentSearch.edge_cost` for one plan edge.

    For a fixed (child, parent) edge the pairwise edge cost factors into

    * a **receiver part** — which visible attributes the receiver may
      only see encrypted (``needs``), the scheme each attribute travels
      under, the encryption seconds if the sender held everything
      plaintext, the ciphertext volume inflation of ``needs``, and the
      receiver-side decryption of ``Ap ∩ needs``;
    * a **sender part** — the attributes the sender already holds
      encrypted, as one bitmask ``m``, plus its CPU/egress rates;
    * a **coupling correction** depending only on ``(receiver, m)`` —
      encryption work saved on ``needs ∧ m``, extra ciphertext volume and
      extra ``Ap`` decryption from ``m ∖ needs`` — memoized per distinct
      sender mask, of which there are few (providers share policies).

    ``cost(sender, receiver)`` is then three multiply-adds, reproducing
    the reference formula exactly (up to float reassociation).

    Construction is pure-value — the table reads only the child's
    estimate, the parent's operand/``Ap`` attributes, the scheme map and
    the mode — so structurally matching edges of *different* queries can
    share one table through :class:`EdgeTableCache`.  The policy- and
    price-dependent receiver parts are rebuilt lazily: every lookup
    passes the subject's current ``(plain, enc, cpu)`` masks and a stale
    entry (mismatching identity) is rebuilt on the spot, so a cached
    table can never serve receiver rows computed under an older policy.
    """

    __slots__ = ("mode", "rows", "bits", "visible_mask",
                 "demand_bits", "none_mask", "base_bytes", "ap_mask", "dec_w",
                 "enc_rand", "enc_demand", "delta_rand", "delta_demand",
                 "receivers", "masks_of")

    def __init__(self, universe: AttributeUniverse, estimate: NodeEstimate,
                 operand_attrs: Iterable[str], ap_attrs: Iterable[str],
                 schemes: Mapping[str, EncryptionScheme], mode: str) -> None:
        self.mode = mode
        rows = estimate.rows
        self.rows = rows
        self.bits = tuple(universe.bit(a) for a in estimate.plain_width)
        self.visible_mask = universe.mask(estimate.plain_width)
        operand_mask = universe.mask(operand_attrs)
        self.none_mask = universe.mask(
            a for a in estimate.plain_width if estimate.scheme.get(a) is None
        )
        self.base_bytes = rows * sum(
            estimate.width_of(a) for a in estimate.plain_width
        )
        self.ap_mask = universe.mask(ap_attrs) & self.visible_mask
        # An attribute travels under one of two schemes: randomized, or
        # the scheme its capability demands (mode/operand dependent) —
        # precompute both weight tables so receiver entries are lookups.
        randomized = EncryptionScheme.RANDOMIZED
        enc_rand = rows * ENCRYPT_SECONDS_PER_VALUE[randomized]
        self.enc_rand = enc_rand
        conservative = mode == "conservative"
        demand_bits = 0
        enc_demand: dict[int, float] = {}
        delta_rand: dict[int, float] = {}
        delta_demand: dict[int, float] = {}
        dec_w: dict[int, float] = {}
        for attribute, bit in zip(estimate.plain_width, self.bits):
            demand_scheme = schemes.get(
                attribute, EncryptionScheme.DETERMINISTIC)
            if conservative or bit & operand_mask:
                demand_bits |= bit
                enc_demand[bit] = rows * ENCRYPT_SECONDS_PER_VALUE[
                    demand_scheme]
            if bit & self.none_mask:
                plain_w = estimate.plain_width[attribute]
                delta_rand[bit] = rows * (
                    encrypted_width(randomized, plain_w) - plain_w
                )
                delta_demand[bit] = rows * (
                    encrypted_width(demand_scheme, plain_w) - plain_w
                )
            if bit & self.ap_mask:
                dec_w[bit] = rows * DECRYPT_SECONDS_PER_VALUE[demand_scheme]
        self.demand_bits = demand_bits
        self.enc_demand = enc_demand
        self.delta_rand = delta_rand
        self.delta_demand = delta_demand
        self.dec_w = dec_w
        self.receivers: dict[str, _ReceiverEntry] = {}
        #: subject name → (plain mask, enc mask, cpu $/s, net $/byte);
        #: rebound by every search that picks the table up.
        self.masks_of = None

    def receiver(self, name: str) -> _ReceiverEntry:
        """The receiver part for one subject (rebuilt when its masks move)."""
        plain_mask, enc_mask, cpu_rate, _net = self.masks_of(name)
        identity = (plain_mask, enc_mask, cpu_rate)
        entry = self.receivers.get(name)
        if entry is None or entry.identity != identity:
            needs = enc_mask & self.visible_mask
            # _edge_scheme per attribute, mask-backed: attributes the
            # receiver may see plaintext travel randomized; otherwise the
            # demand scheme applies on demand_bits, randomized elsewhere.
            demand = self.demand_bits & ~plain_mask
            enc_w: dict[int, float] = {}
            delta_w: dict[int, float] = {}
            total_enc = 0.0
            vol_needs = 0.0
            dec_base = 0.0
            enc_rand = self.enc_rand
            enc_demand = self.enc_demand
            delta_rand = self.delta_rand
            delta_demand = self.delta_demand
            none_mask = self.none_mask
            ap_mask = self.ap_mask
            dec_w = self.dec_w
            for bit in self.bits:
                demanded = bit & demand
                if bit & needs:
                    weight = enc_demand[bit] if demanded else enc_rand
                    enc_w[bit] = weight
                    total_enc += weight
                if bit & none_mask:
                    delta = (delta_demand[bit] if demanded
                             else delta_rand[bit])
                    delta_w[bit] = delta
                    if bit & needs:
                        vol_needs += delta
                if bit & needs and bit & ap_mask:
                    dec_base += dec_w[bit]
            entry = _ReceiverEntry(needs, enc_w, delta_w, total_enc,
                                   vol_needs, dec_base, cpu_rate, identity)
            self.receivers[name] = entry
        return entry

    def memo_parts(self, entry: _ReceiverEntry,
                   mask: int) -> tuple[float, float, float]:
        """Coupling corrections for one sender-encrypted ``mask``.

        Returns (encryption seconds already covered by the sender, extra
        ciphertext volume in bytes from sender-encrypted pass-through
        attributes, extra ``Ap`` decryption seconds at the receiver);
        memoized on the entry per distinct mask.
        """
        enc_overlap = 0.0
        overlap = mask & entry.needs_mask
        while overlap:
            low = overlap & -overlap
            overlap ^= low
            enc_overlap += entry.enc_w[low]
        extra = mask & ~entry.needs_mask
        extra_vol = 0.0
        vol_bits = extra & self.none_mask
        while vol_bits:
            low = vol_bits & -vol_bits
            vol_bits ^= low
            extra_vol += entry.delta_w[low]
        dec_extra = 0.0
        dec_bits = extra & self.ap_mask
        while dec_bits:
            low = dec_bits & -dec_bits
            dec_bits ^= low
            dec_extra += self.dec_w[low]
        parts = (enc_overlap, extra_vol, dec_extra)
        entry.memo[mask] = parts
        return parts

    def cost(self, sender: str, receiver: str) -> float:
        """Exact edge cost of handing the child's output sender→receiver."""
        _plain, sender_enc, sender_cpu, sender_net = self.masks_of(sender)
        entry = self.receiver(receiver)
        mask = sender_enc & self.visible_mask
        parts = entry.memo.get(mask)
        if parts is None:
            parts = self.memo_parts(entry, mask)
        enc_overlap, extra_vol, dec_extra = parts
        cost = sender_cpu * (entry.total_enc_seconds - enc_overlap)
        if sender != receiver:
            cost += ((self.base_bytes + entry.vol_needs_bytes + extra_vol)
                     * sender_net)
        cost += entry.cpu_rate * (entry.dec_base_seconds + dec_extra)
        return cost


class EdgeTableCache:
    """Cross-query cache of decomposed edge-cost tables.

    Distinct queries over the same federation keep re-deriving identical
    DP substructure: an edge whose child estimate (rows, per-attribute
    widths and encryption states), parent operand/``Ap`` attributes,
    scheme choices and mode all match produces the *same*
    :class:`_EdgeTable` regardless of which plan it came from.  This
    cache keys tables by exactly that value signature, over one shared
    :class:`AttributeUniverse` so masks from different queries are
    congruent, and lets every :func:`assign` call that passes
    ``edge_cache=`` reuse them.

    Policy churn is reconciled per subject: :meth:`begin` walks the
    delta journal and drops the receiver rows (the only policy-dependent
    part of a table) of touched subjects from tables whose visible
    attributes intersect the delta's touched mask — the (profile-mask,
    view-mask) granularity of the reconcile contract in
    :mod:`repro.core.plancache`.  The identity check in
    :meth:`_EdgeTable.receiver` independently guarantees correctness
    (a stale row can never be served), so the reconcile pass is about
    hygiene and observability, not safety.
    """

    def __init__(self, maxsize: int = 512) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.universe = AttributeUniverse()
        self._tables: "OrderedDict[tuple, _EdgeTable]" = OrderedDict()
        self._policy: Policy | None = None
        self._version: int | None = None
        self._hits = 0
        self._misses = 0
        self._kept = 0
        self._patched = 0
        self._evicted = 0
        self._flushed = 0

    @staticmethod
    def signature(estimate: NodeEstimate, operand_attrs: Iterable[str],
                  ap_attrs: Iterable[str],
                  schemes: Mapping[str, EncryptionScheme],
                  mode: str) -> tuple:
        """The value signature capturing every input of ``_EdgeTable``."""
        visible = tuple(sorted(estimate.plain_width))
        per_attr = tuple(
            (
                name,
                estimate.plain_width[name],
                getattr(estimate.scheme.get(name), "value", None),
                schemes.get(name, EncryptionScheme.DETERMINISTIC).value,
            )
            for name in visible
        )
        return (
            mode,
            estimate.rows,
            per_attr,
            tuple(sorted(frozenset(operand_attrs) & set(visible))),
            tuple(sorted(frozenset(ap_attrs) & set(visible))),
        )

    def table(self, estimate: NodeEstimate, operand_attrs: Iterable[str],
              ap_attrs: Iterable[str],
              schemes: Mapping[str, EncryptionScheme],
              mode: str) -> _EdgeTable:
        """The cached table for this edge signature, built on first use."""
        key = self.signature(estimate, operand_attrs, ap_attrs, schemes,
                             mode)
        table = self._tables.get(key)
        if table is None:
            self._misses += 1
            table = _EdgeTable(self.universe, estimate, operand_attrs,
                               ap_attrs, schemes, mode)
            self._tables[key] = table
            while len(self._tables) > self.maxsize:
                self._tables.popitem(last=False)
        else:
            self._hits += 1
            self._tables.move_to_end(key)
        return table

    def begin(self, policy: Policy) -> None:
        """Reconcile cached receiver rows against ``policy``'s deltas.

        Called at the start of every search using this cache.  A policy
        object switch or a truncated journal drops every receiver row
        (``flushed``); otherwise each delta surgically drops the touched
        subject's rows from tables whose visible attributes intersect
        the delta's touched mask (``evicted``/``patched``), leaving
        disjoint rows warm (``kept``).
        """
        if policy is self._policy and policy.version == self._version:
            return
        deltas = None if self._policy is not policy \
            else policy.deltas_since(self._version)
        self._policy = policy
        self._version = policy.version
        if deltas is None:
            for table in self._tables.values():
                self._flushed += len(table.receivers)
                table.receivers.clear()
            return
        universe = self.universe
        for table in self._tables.values():
            before = len(table.receivers)
            for delta in deltas:
                if not table.receivers:
                    break
                if not (universe.delta_mask(delta) & table.visible_mask):
                    continue
                if delta.any_subject:
                    self._evicted += len(table.receivers)
                    table.receivers.clear()
                elif table.receivers.pop(delta.subject, None) is not None:
                    self._evicted += 1
            self._kept += len(table.receivers)
            self._patched += 1 if len(table.receivers) != before else 0

    def clear(self) -> None:
        """Drop all tables (statistics are kept)."""
        self._tables.clear()
        self._policy = None
        self._version = None

    def info(self) -> dict[str, int]:
        """Hit/miss/size counters plus reconcile statistics."""
        return {
            "tables": len(self._tables),
            "maxsize": self.maxsize,
            "hits": self._hits,
            "misses": self._misses,
            "reconcile_kept": self._kept,
            "reconcile_patched": self._patched,
            "reconcile_evicted": self._evicted,
            "reconcile_flushed": self._flushed,
        }

    def __len__(self) -> int:
        return len(self._tables)

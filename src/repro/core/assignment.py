"""Cost-based assignment of operations to candidates (§6–§7).

Implements the five-step pipeline of §6:

1. post-order visit computing the candidate sets Λ (Definition 5.3);
2. choice of an assignment λ ∈ Λ minimizing economic cost — a dynamic
   program over (node, subject) states, the strategy the paper's tool
   uses ("our implementation is based on a dynamic programming strategy
   to explore the possible assignments of candidates to operators");
3. post-order plan extension with encryption/decryption (Definition 5.4);
4. key establishment (Definition 6.1);
5. (dispatch lives in :mod:`repro.core.dispatch`).

As §6 notes for non-negligible encryption costs, steps 2–3 are combined:
the DP's edge costs price the encryption/decryption work implied by each
(child subject, parent subject) pair, so scheme costs steer the choice.
The reported cost is always the exact cost of the materialized extended
plan.

Alternative strategies (greedy, exhaustive) are provided for the
ablation benchmarks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.authorization import Policy, Subject, SubjectView
from repro.core.candidates import (
    CandidateAssignment,
    compute_candidates,
    user_can_receive_result,
)
from repro.core.extension import ExtendedPlan, minimally_extend
from repro.core.keys import (
    KeyAssignment,
    establish_keys,
    schemes_for_extended_plan,
)
from repro.core.lineage import augment_view, derived_lineage
from repro.core.operators import BaseRelationNode, PlanNode
from repro.core.plan import QueryPlan
from repro.core.predicates import EncryptedCapability
from repro.core.requirements import (
    EncryptionScheme,
    SchemeCapabilities,
    _node_demands,
    chosen_schemes,
    infer_plaintext_requirements,
)
from repro.cost.estimator import NodeEstimate, PlanEstimator
from repro.cost.factors import (
    DECRYPT_SECONDS_PER_VALUE,
    ENCRYPT_SECONDS_PER_VALUE,
)
from repro.cost.model import CostBreakdown, CostModel
from repro.cost.network import NetworkTopology
from repro.cost.pricing import PriceList
from repro.exceptions import NoCandidateError, UnauthorizedError

_GB = 1e9


@dataclass
class AssignmentResult:
    """Everything produced by the assignment pipeline."""

    assignment: dict[PlanNode, str]
    extended: ExtendedPlan
    keys: KeyAssignment
    cost: CostBreakdown
    candidates: CandidateAssignment

    def assignee(self, node: PlanNode) -> str:
        """Chosen subject for an original-plan operation."""
        for key, subject in self.assignment.items():
            if key is node:
                return subject
        raise UnauthorizedError(f"no assignee recorded for {node.label()}")

    def describe(self) -> str:
        """Assignment summary plus the cost line."""
        lines = [self.extended.describe(), self.cost.describe()]
        return "\n".join(lines)


def assign(
    plan: QueryPlan,
    policy: Policy,
    subjects: Iterable[Subject | str],
    prices: PriceList,
    user: str,
    owners: Mapping[str, str] | None = None,
    topology: NetworkTopology | None = None,
    requirements: Mapping[PlanNode, frozenset[str]] | None = None,
    capabilities: SchemeCapabilities | None = None,
    strategy: str = "dp",
) -> AssignmentResult:
    """Run the full §6 pipeline and return the cheapest authorized plan.

    Raises :class:`NoCandidateError` when some operation has no candidate
    and :class:`UnauthorizedError` when the querying user may not receive
    the query result.
    """
    subject_names = [
        s.name if isinstance(s, Subject) else s for s in subjects
    ]
    if requirements is None:
        requirements = infer_plaintext_requirements(plan, capabilities)
    candidates = compute_candidates(plan, policy, subject_names,
                                    requirements)
    candidates.require_nonempty()
    if not user_can_receive_result(plan, policy, user, candidates.min_views):
        raise UnauthorizedError(
            f"user {user} is not authorized for the query result",
            subject=user,
        )

    schemes = chosen_schemes(plan, capabilities)
    topology = topology or NetworkTopology.paper_defaults(user)
    estimator = PlanEstimator(schemes)
    model = CostModel(prices, topology, estimator)
    searcher = _AssignmentSearch(
        plan=plan,
        policy=policy,
        candidates=candidates,
        requirements=requirements,
        schemes=schemes,
        prices=prices,
        estimator=estimator,
        owners=dict(owners or {}),
        user=user,
    )
    proposals: list[dict[PlanNode, str]] = []
    if strategy == "dp":
        # Portfolio: the DP's pairwise costs cannot see assignment-
        # dependent scheme choices exactly (§6's combined steps 2–3), so
        # propose optimistic and conservative searches plus the
        # no-provider baseline, then compare *exact* extended-plan costs.
        for mode in ("optimistic", "conservative"):
            searcher.edge_scheme_mode = mode
            try:
                proposals.append(searcher.dynamic_programming())
            except NoCandidateError:
                pass
        trusted = frozenset({user}) | frozenset((owners or {}).values())
        searcher.edge_scheme_mode = "optimistic"
        try:
            proposals.append(searcher.dynamic_programming(
                restrict_to=trusted))
        except NoCandidateError:
            pass
        if not proposals:
            raise NoCandidateError("no feasible assignment for the plan")
    elif strategy == "greedy":
        proposals.append(searcher.greedy())
    elif strategy == "exhaustive":
        proposals.append(searcher.exhaustive(model))
    else:
        raise ValueError(f"unknown assignment strategy {strategy!r}")

    best: AssignmentResult | None = None
    for assignment in proposals:
        extended = minimally_extend(
            plan, policy, assignment, requirements=requirements,
            owners=owners, deliver_to=user,
        )
        # §6: schemes depend on the chosen assignment — attributes
        # encrypted purely in transit get randomized encryption; only
        # attributes some assignee computes on encrypted need
        # det/OPE/Paillier.
        exact_schemes = schemes_for_extended_plan(extended, capabilities,
                                                  policy)
        keys = establish_keys(extended, policy, schemes=exact_schemes)
        exact_model = CostModel(prices, topology,
                                PlanEstimator(exact_schemes))
        cost = exact_model.extended_plan_cost(extended, user, owners)
        result = AssignmentResult(
            assignment=assignment,
            extended=extended,
            keys=keys,
            cost=cost,
            candidates=candidates,
        )
        if best is None or cost.total_usd < best.cost.total_usd:
            best = result
    assert best is not None
    return best


class _AssignmentSearch:
    """Shared machinery of the three assignment strategies."""

    def __init__(self, plan: QueryPlan, policy: Policy,
                 candidates: CandidateAssignment,
                 requirements: Mapping[PlanNode, frozenset[str]],
                 schemes: Mapping[str, EncryptionScheme],
                 prices: PriceList, estimator: PlanEstimator,
                 owners: dict[str, str], user: str) -> None:
        self.plan = plan
        self.policy = policy
        self.candidates = candidates
        self.requirements = requirements
        self.schemes = schemes
        self.prices = prices
        self.estimator = estimator
        self.owners = owners
        self.user = user
        self.estimates = estimator.estimate(plan)
        self._lineage = derived_lineage(plan)
        self._views: dict[str, SubjectView] = {}

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def view(self, subject: str) -> SubjectView:
        if subject not in self._views:
            self._views[subject] = augment_view(
                self.policy.view(subject), self._lineage
            )
        return self._views[subject]

    def owner_of(self, leaf: BaseRelationNode) -> str:
        name = leaf.relation.name
        return self.owners.get(name, f"authority:{name}")

    def plaintext_needed(self, node: PlanNode) -> frozenset[str]:
        for key, value in self.requirements.items():
            if key is node:
                return value
        return frozenset()

    #: edge-scheme estimation mode: "optimistic" charges randomized
    #: encryption for pass-through attributes (underestimates deep
    #: chains), "conservative" always charges the demand-based scheme
    #: (overestimates transit-only encryption).  The portfolio strategy
    #: tries both and compares exact costs.
    edge_scheme_mode = "optimistic"

    def _edge_scheme(self, attribute: str, parent: PlanNode,
                     receiver: str) -> EncryptionScheme:
        """Scheme charged when encrypting ``attribute`` for ``parent``.

        A receiver authorized for the attribute's plaintext computes in
        the clear (note 2 / opportunistic decryption), so transit needs
        only randomized encryption.  Otherwise, attributes the parent
        operation computes on need the scheme their capability demands;
        attributes merely passing through need only randomized encryption
        (§6's highest-protection rule).
        """
        if self.view(receiver).can_view_plaintext(attribute):
            return EncryptionScheme.RANDOMIZED
        if self.edge_scheme_mode == "conservative" \
                or attribute in parent.operand_attributes():
            return self.schemes.get(attribute,
                                    EncryptionScheme.DETERMINISTIC)
        return EncryptionScheme.RANDOMIZED

    def _crypto_seconds(self, attributes: Iterable[str], rows: float,
                        table: Mapping[EncryptionScheme, float],
                        parent: PlanNode | None = None,
                        receiver: str | None = None) -> float:
        seconds = 0.0
        for attribute in attributes:
            if parent is not None and receiver is not None:
                scheme = self._edge_scheme(attribute, parent, receiver)
            else:
                scheme = self.schemes.get(attribute,
                                          EncryptionScheme.DETERMINISTIC)
            seconds += rows * table[scheme]
        return seconds

    def edge_cost(self, child: PlanNode, sender: str,
                  parent: PlanNode, receiver: str) -> float:
        """Approximate cost of handing ``child``'s output to ``receiver``.

        Covers: encryption at the sender of visible attributes the
        receiver may only see encrypted (skipping attributes the sender
        itself already held encrypted), the network transfer of the
        (partially encrypted) output, and decryption at the receiver of
        attributes the parent operation needs in plaintext.
        """
        estimate = self.estimates[id(child)]
        receiver_view = self.view(receiver)
        visible = frozenset(estimate.plain_width)
        needs_encrypted = receiver_view.encrypted & visible
        sender_view = self.view(sender) if not sender.startswith(
            "authority:") else None
        already_encrypted = (sender_view.encrypted & visible
                             if sender_view is not None else frozenset())
        to_encrypt = needs_encrypted - already_encrypted
        enc_seconds = self._crypto_seconds(
            to_encrypt, estimate.rows, ENCRYPT_SECONDS_PER_VALUE,
            parent=parent, receiver=receiver,
        )
        cost = enc_seconds * self.prices.rates(sender).cpu_usd_per_second

        edge_schemes = {
            attribute: self._edge_scheme(attribute, parent, receiver)
            for attribute in visible
        }
        volume = estimate.bytes_if_encrypted(
            needs_encrypted | already_encrypted, edge_schemes
        )
        if sender != receiver:
            cost += volume / _GB * self.prices.rates(sender).net_usd_per_gb

        to_decrypt = self.plaintext_needed(parent) & frozenset(
            needs_encrypted | already_encrypted
        )
        dec_seconds = self._crypto_seconds(
            to_decrypt, estimate.rows, DECRYPT_SECONDS_PER_VALUE
        )
        cost += dec_seconds * self.prices.rates(receiver).cpu_usd_per_second
        return cost

    def node_cost(self, node: PlanNode, subject: str) -> float:
        """CPU + IO cost of executing ``node`` at ``subject``."""
        estimate = self.estimates[id(node)]
        rates = self.prices.rates(subject)
        return (estimate.cpu_seconds * rates.cpu_usd_per_second
                + estimate.io_bytes / _GB * rates.io_usd_per_gb
                + self._scheme_penalty(node, subject))

    def _scheme_penalty(self, node: PlanNode, subject: str) -> float:
        """Extra cost implied by running ``node`` at ``subject`` encrypted.

        §6 combines assignment and extension: assigning an addition- or
        order-demanding operation to a subject without plaintext
        visibility forces Paillier/OPE encryption upstream (and expensive
        decryption of the results downstream).  The penalty charges the
        scheme upgrade over randomized encryption at the operand
        cardinality, priced at the authority rate (the sources encrypt),
        plus the user-side decryption of the outputs.
        """
        view = self.view(subject)
        operand_rows = sum(
            self.estimates[id(child)].rows for child in node.children
        )
        authority_rate = max(
            (self.prices.rates(owner).cpu_usd_per_second
             for owner in self.owners.values()),
            default=self.prices.rates(self.user).cpu_usd_per_second,
        )
        penalty = 0.0
        for attribute, capability in _node_demands(node):
            if capability not in (EncryptedCapability.ADDITION,
                                  EncryptedCapability.ORDER):
                continue
            if view.can_view_plaintext(attribute):
                # Opportunistic decryption: a cheap randomized decrypt.
                penalty += (
                    operand_rows
                    * DECRYPT_SECONDS_PER_VALUE[EncryptionScheme.RANDOMIZED]
                    * self.prices.rates(subject).cpu_usd_per_second
                )
                continue
            scheme = (EncryptionScheme.PAILLIER
                      if capability is EncryptedCapability.ADDITION
                      else EncryptionScheme.OPE)
            upgrade = (ENCRYPT_SECONDS_PER_VALUE[scheme]
                       - ENCRYPT_SECONDS_PER_VALUE[
                           EncryptionScheme.RANDOMIZED])
            penalty += operand_rows * upgrade * authority_rate
            output_rows = self.estimates[id(node)].rows
            penalty += (
                output_rows * DECRYPT_SECONDS_PER_VALUE[scheme]
                * self.prices.rates(self.user).cpu_usd_per_second
            )
        return penalty

    def delivery_cost(self, root_subject: str) -> float:
        """Ship the result to the user and decrypt what arrives encrypted."""
        estimate = self.estimates[id(self.plan.root)]
        cost = 0.0
        if root_subject != self.user:
            cost += (estimate.output_bytes / _GB
                     * self.prices.rates(root_subject).net_usd_per_gb)
        visible = frozenset(estimate.plain_width)
        encrypted_at_root = self.view(root_subject).encrypted & visible
        dec_seconds = self._crypto_seconds(
            encrypted_at_root, estimate.rows, DECRYPT_SECONDS_PER_VALUE
        )
        cost += dec_seconds * self.prices.rates(self.user).cpu_usd_per_second
        return cost

    # ------------------------------------------------------------------
    # Strategies
    # ------------------------------------------------------------------
    def dynamic_programming(self, restrict_to: frozenset[str] | None = None,
                            ) -> dict[PlanNode, str]:
        """Optimal assignment under the pairwise cost approximation.

        ``restrict_to`` limits the considered subjects (used by the
        portfolio to evaluate the no-provider baseline).  Raises
        :class:`NoCandidateError` when the restriction empties some
        operation's candidate set.
        """
        table: dict[int, dict[str, float]] = {}
        choice: dict[int, dict[str, dict[int, str]]] = {}

        for node in self.plan.operations():
            table[id(node)] = {}
            choice[id(node)] = {}
            allowed = self.candidates[node]
            if restrict_to is not None:
                allowed = allowed & restrict_to
                if not allowed:
                    raise NoCandidateError(
                        f"restriction leaves no candidate for {node.label()}",
                        node=node,
                    )
            for subject in allowed:
                total = self.node_cost(node, subject)
                picks: dict[int, str] = {}
                feasible = True
                for child in node.children:
                    if isinstance(child, BaseRelationNode):
                        owner = self.owner_of(child)
                        total += self.node_cost(child, owner)
                        total += self.edge_cost(child, owner, node, subject)
                        continue
                    best_cost = None
                    best_subject = None
                    for child_subject, child_cost in table[id(child)].items():
                        candidate_cost = child_cost + self.edge_cost(
                            child, child_subject, node, subject
                        )
                        if best_cost is None or candidate_cost < best_cost:
                            best_cost = candidate_cost
                            best_subject = child_subject
                    if best_subject is None:
                        feasible = False
                        break
                    total += best_cost
                    picks[id(child)] = best_subject
                if feasible:
                    table[id(node)][subject] = total
                    choice[id(node)][subject] = picks

        root = self.plan.root
        root_costs = {
            subject: cost + self.delivery_cost(subject)
            for subject, cost in table[id(root)].items()
        }
        if not root_costs:
            raise NoCandidateError(
                "no feasible assignment for the plan root", node=root
            )
        best_root = min(root_costs, key=root_costs.__getitem__)

        assignment: dict[PlanNode, str] = {}

        def backtrack(node: PlanNode, subject: str) -> None:
            assignment[node] = subject
            for child in node.children:
                if isinstance(child, BaseRelationNode):
                    continue
                backtrack(child, choice[id(node)][subject][id(child)])

        backtrack(root, best_root)
        return assignment

    def greedy(self) -> dict[PlanNode, str]:
        """Cheapest-subject-per-node baseline (ignores edge effects)."""
        assignment: dict[PlanNode, str] = {}
        for node in self.plan.operations():
            names = self.candidates[node]
            if not names:
                raise NoCandidateError(
                    f"no candidate for {node.label()}", node=node
                )
            assignment[node] = min(
                names, key=lambda s: (self.node_cost(node, s), s)
            )
        return assignment

    def exhaustive(self, model: CostModel) -> dict[PlanNode, str]:
        """Exact search: materialize every assignment (small plans only)."""
        operations = list(self.plan.operations())
        domains = [sorted(self.candidates[n]) for n in operations]
        combination_count = 1
        for domain in domains:
            combination_count *= len(domain)
        if combination_count > 50_000:
            raise NoCandidateError(
                f"exhaustive search infeasible: {combination_count} "
                f"assignments"
            )
        best_cost = None
        best_assignment = None
        for combo in itertools.product(*domains):
            assignment = dict(zip(operations, combo))
            try:
                extended = minimally_extend(
                    self.plan, self.policy, assignment,
                    requirements=self.requirements, owners=self.owners,
                    deliver_to=self.user,
                )
            except UnauthorizedError:
                continue
            cost = model.extended_plan_cost(
                extended, self.user, self.owners
            ).total_usd
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_assignment = assignment
        if best_assignment is None:
            raise NoCandidateError("no authorized assignment exists")
        return best_assignment

"""The authorization model of Section 2.

Each data authority independently specifies, for each of its relations,
rules of the form ``[P, E] → S`` (Definition 2.1): subject ``S`` may see
attributes ``P`` in plaintext and attributes ``E`` encrypted.  The policy
is *closed*: anything not explicitly granted is not visible.  A rule for
the pseudo-subject :data:`ANY` acts as the default for subjects without an
explicit rule on that relation.

:class:`Policy` aggregates the rules of all authorities and computes, for
any subject, the *overall view* ``P_S`` / ``E_S`` used throughout Sections
4–6 (see Figure 4 of the paper).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping

from repro.core.schema import Relation, Schema
from repro.exceptions import AuthorizationError

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.attrsets import MaskView

#: Pseudo-subject matching every subject without an explicit authorization.
ANY = "any"


class SubjectKind(enum.Enum):
    """The three subject roles of the paper's scenario (§1)."""

    USER = "user"
    AUTHORITY = "authority"
    PROVIDER = "provider"


@dataclass(frozen=True)
class Subject:
    """A user, data authority, or cloud provider.

    Examples
    --------
    >>> Subject("X", SubjectKind.PROVIDER).name
    'X'
    """

    name: str
    kind: SubjectKind = SubjectKind.PROVIDER

    def __post_init__(self) -> None:
        if not self.name:
            raise AuthorizationError("subject name must be non-empty")
        if self.name == ANY:
            raise AuthorizationError(
                "'any' is reserved for the default authorization subject"
            )

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Authorization:
    """A rule ``[P, E] → S`` over one relation (Definition 2.1).

    ``subject`` is a subject name, or :data:`ANY` for the default rule.
    ``P`` and ``E`` must be disjoint subsets of the relation's attributes.
    """

    relation: str
    plaintext: frozenset[str]
    encrypted: frozenset[str]
    subject: str

    def __init__(self, relation: str | Relation,
                 plaintext: Iterable[str],
                 encrypted: Iterable[str],
                 subject: str | Subject) -> None:
        relation_name = relation.name if isinstance(relation, Relation) else relation
        subject_name = subject.name if isinstance(subject, Subject) else subject
        p = frozenset(plaintext)
        e = frozenset(encrypted)
        if p & e:
            raise AuthorizationError(
                f"P and E must be disjoint; overlap: {sorted(p & e)}"
            )
        if isinstance(relation, Relation):
            unknown = (p | e) - relation.attribute_set
            if unknown:
                raise AuthorizationError(
                    f"authorization over {relation_name} references unknown "
                    f"attributes {sorted(unknown)}"
                )
        object.__setattr__(self, "relation", relation_name)
        object.__setattr__(self, "plaintext", p)
        object.__setattr__(self, "encrypted", e)
        object.__setattr__(self, "subject", subject_name)

    def describe(self) -> str:
        """Render in the paper's ``[P,E]→S`` notation."""
        p = "".join(sorted(self.plaintext))
        e = "".join(sorted(self.encrypted))
        return f"[{p},{e}]→{self.subject}"

    def __str__(self) -> str:
        return self.describe()


@dataclass(frozen=True)
class SubjectView:
    """The overall view ``P_S`` / ``E_S`` of a subject (§4, Figure 4).

    ``plaintext`` collects every attribute the subject may access in
    plaintext across all relations; ``encrypted`` collects the attributes
    accessible only in encrypted form.  Plaintext visibility subsumes
    encrypted visibility (Def. 4.1, condition 2), which is why
    :meth:`can_view_encrypted` also checks ``plaintext``.
    """

    subject: str
    plaintext: frozenset[str] = frozenset()
    encrypted: frozenset[str] = frozenset()

    def can_view_plaintext(self, attribute: str) -> bool:
        """Whether the subject may see ``attribute`` in plaintext."""
        return attribute in self.plaintext

    def can_view_encrypted(self, attribute: str) -> bool:
        """Whether the subject may see ``attribute`` at least encrypted."""
        return attribute in self.plaintext or attribute in self.encrypted

    def masks(self, universe) -> "MaskView":
        """Bitmask fast path: ``P_S`` / ``E_S`` interned into ``universe``.

        ``universe`` is an
        :class:`~repro.core.attrsets.AttributeUniverse`; the conversion
        is memoised there, so repeated calls are dictionary lookups.
        """
        return universe.view_masks(self)

    def describe(self) -> str:
        """Render as in Figure 4, e.g. ``P_X=DT  E_X=SCP``."""
        p = "".join(sorted(self.plaintext)) or "-"
        e = "".join(sorted(self.encrypted)) or "-"
        return f"P_{self.subject}={p}  E_{self.subject}={e}"


@dataclass
class Policy:
    """All authorization rules in force, indexed by relation and subject.

    At most one rule per (relation, subject) pair is allowed, as the paper
    assumes ("for each relation, a subject can hold at most one
    authorization").  The rule for :data:`ANY` applies to every subject
    with no explicit rule on that relation (closed policy otherwise).

    The policy carries a monotone :attr:`version` counter, bumped by
    every :meth:`grant` and :meth:`revoke`.  Caches keyed on the version
    (notably :class:`repro.core.plancache.AssignmentCache`) are thereby
    invalidated by any policy change without inspecting the rules.
    """

    schema: Schema | None = None
    _rules: dict[str, dict[str, Authorization]] = field(default_factory=dict)
    _version: int = 0

    @property
    def version(self) -> int:
        """Monotone change counter (grants and revocations bump it)."""
        return self._version

    def grant(self, authorization: Authorization) -> Authorization:
        """Register one rule; rejects duplicates for the same pair."""
        if self.schema is not None and authorization.relation not in self.schema:
            raise AuthorizationError(
                f"authorization references unknown relation "
                f"{authorization.relation!r}"
            )
        if self.schema is not None:
            relation = self.schema.relation(authorization.relation)
            unknown = (
                authorization.plaintext | authorization.encrypted
            ) - relation.attribute_set
            if unknown:
                raise AuthorizationError(
                    f"authorization over {authorization.relation} references "
                    f"unknown attributes {sorted(unknown)}"
                )
        per_relation = self._rules.setdefault(authorization.relation, {})
        if authorization.subject in per_relation:
            raise AuthorizationError(
                f"duplicate authorization for subject {authorization.subject} "
                f"on relation {authorization.relation}"
            )
        per_relation[authorization.subject] = authorization
        self._version += 1
        return authorization

    def grant_all(self, authorizations: Iterable[Authorization]) -> None:
        """Register many rules at once."""
        for authorization in authorizations:
            self.grant(authorization)

    def revoke(self, relation: str | Relation,
               subject: str | Subject) -> Authorization:
        """Remove and return the rule for (relation, subject).

        Raises :class:`AuthorizationError` when no explicit rule exists
        for the pair (the :data:`ANY` default must be revoked as subject
        :data:`ANY` explicitly).  Bumps :attr:`version`.
        """
        relation_name = relation.name if isinstance(relation, Relation) \
            else relation
        subject_name = subject.name if isinstance(subject, Subject) \
            else subject
        per_relation = self._rules.get(relation_name)
        if per_relation is None or subject_name not in per_relation:
            raise AuthorizationError(
                f"no authorization for subject {subject_name} on relation "
                f"{relation_name} to revoke"
            )
        rule = per_relation.pop(subject_name)
        if not per_relation:
            del self._rules[relation_name]
        self._version += 1
        return rule

    def rule_for(self, relation: str, subject: str | Subject) -> Authorization | None:
        """The rule applying to ``subject`` on ``relation``.

        Falls back to the relation's :data:`ANY` rule; returns ``None``
        when the closed policy denies everything.
        """
        subject_name = subject.name if isinstance(subject, Subject) else subject
        per_relation = self._rules.get(relation, {})
        explicit = per_relation.get(subject_name)
        if explicit is not None:
            return explicit
        return per_relation.get(ANY)

    def view(self, subject: str | Subject) -> SubjectView:
        """The overall view ``P_S`` / ``E_S`` of ``subject`` (Figure 4)."""
        subject_name = subject.name if isinstance(subject, Subject) else subject
        plaintext: set[str] = set()
        encrypted: set[str] = set()
        for relation in self._rules:
            rule = self.rule_for(relation, subject_name)
            if rule is not None:
                plaintext |= rule.plaintext
                encrypted |= rule.encrypted
        # Plaintext subsumes encrypted: normalise so the sets are disjoint.
        encrypted -= plaintext
        return SubjectView(
            subject=subject_name,
            plaintext=frozenset(plaintext),
            encrypted=frozenset(encrypted),
        )

    def relations(self) -> frozenset[str]:
        """Relations with at least one rule."""
        return frozenset(self._rules)

    def subjects(self) -> frozenset[str]:
        """Subjects explicitly named in some rule (excluding ``any``)."""
        names: set[str] = set()
        for per_relation in self._rules.values():
            names |= set(per_relation) - {ANY}
        return frozenset(names)

    def rules(self) -> Iterator[Authorization]:
        """Iterate over every registered rule."""
        for per_relation in self._rules.values():
            yield from per_relation.values()

    def describe(self) -> str:
        """Multi-line rendering of all rules in paper notation."""
        lines = []
        for relation in sorted(self._rules):
            for subject in sorted(self._rules[relation]):
                rule = self._rules[relation][subject]
                lines.append(f"{relation}: {rule.describe()}")
        return "\n".join(lines)

"""The authorization model of Section 2.

Each data authority independently specifies, for each of its relations,
rules of the form ``[P, E] → S`` (Definition 2.1): subject ``S`` may see
attributes ``P`` in plaintext and attributes ``E`` encrypted.  The policy
is *closed*: anything not explicitly granted is not visible.  A rule for
the pseudo-subject :data:`ANY` acts as the default for subjects without an
explicit rule on that relation.

:class:`Policy` aggregates the rules of all authorities and computes, for
any subject, the *overall view* ``P_S`` / ``E_S`` used throughout Sections
4–6 (see Figure 4 of the paper).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping

from repro.core.schema import Relation, Schema
from repro.exceptions import AuthorizationError

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.attrsets import MaskView

#: Pseudo-subject matching every subject without an explicit authorization.
ANY = "any"


class SubjectKind(enum.Enum):
    """The three subject roles of the paper's scenario (§1)."""

    USER = "user"
    AUTHORITY = "authority"
    PROVIDER = "provider"


@dataclass(frozen=True)
class Subject:
    """A user, data authority, or cloud provider.

    Examples
    --------
    >>> Subject("X", SubjectKind.PROVIDER).name
    'X'
    """

    name: str
    kind: SubjectKind = SubjectKind.PROVIDER

    def __post_init__(self) -> None:
        if not self.name:
            raise AuthorizationError("subject name must be non-empty")
        if self.name == ANY:
            raise AuthorizationError(
                "'any' is reserved for the default authorization subject"
            )

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Authorization:
    """A rule ``[P, E] → S`` over one relation (Definition 2.1).

    ``subject`` is a subject name, or :data:`ANY` for the default rule.
    ``P`` and ``E`` must be disjoint subsets of the relation's attributes.
    """

    relation: str
    plaintext: frozenset[str]
    encrypted: frozenset[str]
    subject: str

    def __init__(self, relation: str | Relation,
                 plaintext: Iterable[str],
                 encrypted: Iterable[str],
                 subject: str | Subject) -> None:
        relation_name = relation.name if isinstance(relation, Relation) else relation
        subject_name = subject.name if isinstance(subject, Subject) else subject
        p = frozenset(plaintext)
        e = frozenset(encrypted)
        if p & e:
            raise AuthorizationError(
                f"P and E must be disjoint; overlap: {sorted(p & e)}"
            )
        if isinstance(relation, Relation):
            unknown = (p | e) - relation.attribute_set
            if unknown:
                raise AuthorizationError(
                    f"authorization over {relation_name} references unknown "
                    f"attributes {sorted(unknown)}"
                )
        object.__setattr__(self, "relation", relation_name)
        object.__setattr__(self, "plaintext", p)
        object.__setattr__(self, "encrypted", e)
        object.__setattr__(self, "subject", subject_name)

    def describe(self) -> str:
        """Render in the paper's ``[P,E]→S`` notation."""
        p = "".join(sorted(self.plaintext))
        e = "".join(sorted(self.encrypted))
        return f"[{p},{e}]→{self.subject}"

    def __str__(self) -> str:
        return self.describe()


@dataclass(frozen=True)
class SubjectView:
    """The overall view ``P_S`` / ``E_S`` of a subject (§4, Figure 4).

    ``plaintext`` collects every attribute the subject may access in
    plaintext across all relations; ``encrypted`` collects the attributes
    accessible only in encrypted form.  Plaintext visibility subsumes
    encrypted visibility (Def. 4.1, condition 2), which is why
    :meth:`can_view_encrypted` also checks ``plaintext``.
    """

    subject: str
    plaintext: frozenset[str] = frozenset()
    encrypted: frozenset[str] = frozenset()

    def can_view_plaintext(self, attribute: str) -> bool:
        """Whether the subject may see ``attribute`` in plaintext."""
        return attribute in self.plaintext

    def can_view_encrypted(self, attribute: str) -> bool:
        """Whether the subject may see ``attribute`` at least encrypted."""
        return attribute in self.plaintext or attribute in self.encrypted

    def masks(self, universe) -> "MaskView":
        """Bitmask fast path: ``P_S`` / ``E_S`` interned into ``universe``.

        ``universe`` is an
        :class:`~repro.core.attrsets.AttributeUniverse`; the conversion
        is memoised there, so repeated calls are dictionary lookups.
        """
        return universe.view_masks(self)

    def describe(self) -> str:
        """Render as in Figure 4, e.g. ``P_X=DT  E_X=SCP``."""
        p = "".join(sorted(self.plaintext)) or "-"
        e = "".join(sorted(self.encrypted)) or "-"
        return f"P_{self.subject}={p}  E_{self.subject}={e}"


@dataclass(frozen=True)
class PolicyDelta:
    """One journalled policy mutation and what it may have changed.

    ``version`` is the policy version *after* the mutation applied.
    ``touched`` over-approximates the attribute names whose visibility
    may have changed for the affected subjects: the mutated rule's own
    ``P ∪ E``, plus — because an explicit rule shadows the relation's
    :data:`ANY` default — the attributes of the default rule the grant
    displaced or the revocation restored.

    The affected subjects are ``{subject}`` for an explicit rule, and
    *unknown* (every subject without an explicit rule on the relation,
    including subjects named only in the future) for an :data:`ANY`
    mutation; :meth:`touches` is correspondingly conservative.
    """

    version: int
    kind: str  # "grant" | "revoke"
    relation: str
    subject: str
    touched: frozenset[str]

    @property
    def any_subject(self) -> bool:
        """Whether the mutation hit the :data:`ANY` default rule."""
        return self.subject == ANY

    def touches(self, subjects: "frozenset[str] | set[str]",
                attributes: frozenset[str] | None = None) -> bool:
        """Whether this delta may change how ``subjects`` see ``attributes``.

        ``attributes=None`` means "any attribute" (subject-granularity
        callers).  Must stay conservative: a ``False`` is a promise that
        every view in ``subjects``, restricted to ``attributes``, is
        bit-identical across the mutation.
        """
        if not self.any_subject and self.subject not in subjects:
            return False
        if attributes is None:
            return True
        return bool(self.touched & attributes)


#: Default bound on the per-policy delta journal.  Old deltas beyond it
#: are dropped; caches that fell further behind must flush instead of
#: reconciling (``deltas_since`` returns ``None``).
DEFAULT_JOURNAL_LIMIT = 512


@dataclass
class Policy:
    """All authorization rules in force, indexed by relation and subject.

    At most one rule per (relation, subject) pair is allowed, as the paper
    assumes ("for each relation, a subject can hold at most one
    authorization").  The rule for :data:`ANY` applies to every subject
    with no explicit rule on that relation (closed policy otherwise).

    The policy carries a monotone :attr:`version` counter, bumped by
    every effective :meth:`grant` and :meth:`revoke`, plus a bounded
    **delta journal** of :class:`PolicyDelta` records.  Caches keyed on
    the version (notably :class:`repro.core.plancache.AssignmentCache`
    and the runtime caches of
    :class:`repro.distributed.runtime.DistributedRuntime`) call
    :meth:`deltas_since` to decide *surgically* which entries a policy
    change actually affects instead of flushing wholesale.  No-op
    mutations — granting a rule identical to the one in force, or
    revoking a rule that does not exist — are version- and
    journal-neutral.
    """

    schema: Schema | None = None
    _rules: dict[str, dict[str, Authorization]] = field(default_factory=dict)
    _version: int = 0
    journal_limit: int = DEFAULT_JOURNAL_LIMIT
    _journal: list[PolicyDelta] = field(default_factory=list)

    @property
    def version(self) -> int:
        """Monotone change counter (grants and revocations bump it)."""
        return self._version

    def _record_delta(self, kind: str, relation: str, subject: str,
                      touched: frozenset[str]) -> None:
        """Bump the version and journal one mutation (bounded)."""
        self._version += 1
        self._journal.append(PolicyDelta(
            version=self._version, kind=kind, relation=relation,
            subject=subject, touched=touched,
        ))
        while len(self._journal) > max(0, self.journal_limit):
            self._journal.pop(0)

    def deltas_since(self, version: int) -> tuple[PolicyDelta, ...] | None:
        """The journalled deltas after ``version``, oldest first.

        Returns ``()`` when ``version`` is current, and ``None`` when the
        journal no longer reaches back to ``version`` (or ``version`` is
        from the future) — the caller must then treat *everything* as
        potentially changed and flush.
        """
        if version == self._version:
            return ()
        if version > self._version or \
                version < self._version - len(self._journal):
            return None
        return tuple(d for d in self._journal if d.version > version)

    def grant(self, authorization: Authorization) -> Authorization:
        """Register one rule; rejects conflicting duplicates for the pair.

        Granting a rule *identical* to the one already in force is a
        no-op: the existing rule is returned and neither the version nor
        the journal moves (downstream caches stay warm).
        """
        if self.schema is not None and authorization.relation not in self.schema:
            raise AuthorizationError(
                f"authorization references unknown relation "
                f"{authorization.relation!r}"
            )
        if self.schema is not None:
            relation = self.schema.relation(authorization.relation)
            unknown = (
                authorization.plaintext | authorization.encrypted
            ) - relation.attribute_set
            if unknown:
                raise AuthorizationError(
                    f"authorization over {authorization.relation} references "
                    f"unknown attributes {sorted(unknown)}"
                )
        per_relation = self._rules.setdefault(authorization.relation, {})
        existing = per_relation.get(authorization.subject)
        if existing is not None:
            if existing == authorization:
                return existing
            raise AuthorizationError(
                f"duplicate authorization for subject {authorization.subject} "
                f"on relation {authorization.relation}"
            )
        # An explicit grant shadows the relation's ANY default for this
        # subject, so the displaced default's attributes may *lose*
        # visibility — they belong in the delta's touched set.
        displaced: frozenset[str] = frozenset()
        if authorization.subject != ANY:
            default = per_relation.get(ANY)
            if default is not None:
                displaced = default.plaintext | default.encrypted
        per_relation[authorization.subject] = authorization
        self._record_delta(
            "grant", authorization.relation, authorization.subject,
            authorization.plaintext | authorization.encrypted | displaced,
        )
        return authorization

    def grant_all(self, authorizations: Iterable[Authorization]) -> None:
        """Register many rules at once."""
        for authorization in authorizations:
            self.grant(authorization)

    def revoke(self, relation: str | Relation,
               subject: str | Subject) -> Authorization | None:
        """Remove and return the rule for (relation, subject).

        Returns ``None`` — version- and journal-neutrally — when no
        explicit rule exists for the pair (the :data:`ANY` default must
        be revoked as subject :data:`ANY` explicitly).  Bumps
        :attr:`version` otherwise.
        """
        relation_name = relation.name if isinstance(relation, Relation) \
            else relation
        subject_name = subject.name if isinstance(subject, Subject) \
            else subject
        per_relation = self._rules.get(relation_name)
        if per_relation is None or subject_name not in per_relation:
            return None
        rule = per_relation.pop(subject_name)
        # Revoking an explicit rule un-shadows the ANY default: the
        # subject may *gain* the default's attributes.
        restored: frozenset[str] = frozenset()
        if subject_name != ANY:
            default = per_relation.get(ANY)
            if default is not None:
                restored = default.plaintext | default.encrypted
        if not per_relation:
            del self._rules[relation_name]
        self._record_delta(
            "revoke", relation_name, subject_name,
            rule.plaintext | rule.encrypted | restored,
        )
        return rule

    def rule_for(self, relation: str, subject: str | Subject) -> Authorization | None:
        """The rule applying to ``subject`` on ``relation``.

        Falls back to the relation's :data:`ANY` rule; returns ``None``
        when the closed policy denies everything.
        """
        subject_name = subject.name if isinstance(subject, Subject) else subject
        per_relation = self._rules.get(relation, {})
        explicit = per_relation.get(subject_name)
        if explicit is not None:
            return explicit
        return per_relation.get(ANY)

    def view(self, subject: str | Subject) -> SubjectView:
        """The overall view ``P_S`` / ``E_S`` of ``subject`` (Figure 4)."""
        subject_name = subject.name if isinstance(subject, Subject) else subject
        plaintext: set[str] = set()
        encrypted: set[str] = set()
        for relation in self._rules:
            rule = self.rule_for(relation, subject_name)
            if rule is not None:
                plaintext |= rule.plaintext
                encrypted |= rule.encrypted
        # Plaintext subsumes encrypted: normalise so the sets are disjoint.
        encrypted -= plaintext
        return SubjectView(
            subject=subject_name,
            plaintext=frozenset(plaintext),
            encrypted=frozenset(encrypted),
        )

    def relations(self) -> frozenset[str]:
        """Relations with at least one rule."""
        return frozenset(self._rules)

    def subjects(self) -> frozenset[str]:
        """Subjects explicitly named in some rule (excluding ``any``)."""
        names: set[str] = set()
        for per_relation in self._rules.values():
            names |= set(per_relation) - {ANY}
        return frozenset(names)

    def rules(self) -> Iterator[Authorization]:
        """Iterate over every registered rule."""
        for per_relation in self._rules.values():
            yield from per_relation.values()

    def describe(self) -> str:
        """Multi-line rendering of all rules in paper notation."""
        lines = []
        for relation in sorted(self._rules):
            for subject in sorted(self._rules[relation]):
                rule = self._rules[relation][subject]
                lines.append(f"{relation}: {rule.describe()}")
        return "\n".join(lines)

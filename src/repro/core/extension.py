"""Minimally extended authorized query plans (Definition 5.4).

Given a query plan and an assignment ``λ`` of operations to candidate
subjects, this module injects encryption and decryption operations so that
``λ`` becomes an *authorized* assignment (Definition 4.2) while encrypting
a minimal set of attributes (Theorem 5.3):

* **decryption before an operation** — attributes the operation needs in
  plaintext (``Ap``) that arrive encrypted are decrypted
  (Def. 5.4(i));
* **encryption after an operation** — attributes are encrypted when the
  parent operation's assignee may only see them encrypted
  (``E_So ∩ Rvp``), or when the parent turns them implicit and some
  ancestor's assignee may only see them encrypted (the ``A`` term of
  Def. 5.4(ii)), which prevents plaintext traces that would invalidate
  later assignments.

Encryption/decryption operations are assigned to the same subject as the
node they complement; encryption at the sources is performed by the data
authority owning the base relation (§5, Figure 7).

Beyond the letter of Definition 5.4, :func:`minimally_extend` harmonises
comparison operands that arrive in mixed representations (one side
encrypted by an earlier step, the other plaintext): the encrypted side is
decrypted when the assignee is authorized for its plaintext (adding no
encrypted attributes, hence preserving minimality).  Uniform visibility
guarantees this is always possible for assignments drawn from Λ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.authorization import Policy
from repro.core.lineage import Lineage, augment_view, derived_lineage
from repro.core.operators import (
    BaseRelationNode,
    Decrypt,
    Encrypt,
    Join,
    PlanNode,
    Selection,
    Udf,
)
from repro.core.plan import NodeMap, QueryPlan
from repro.core.predicates import AttributeComparisonPredicate
from repro.core.profile import RelationProfile
from repro.core.predicates import EncryptedCapability
from repro.core.requirements import (
    SchemeCapabilities,
    _node_demands,
    infer_plaintext_requirements,
)
from repro.core.visibility import verify_assignment
from repro.exceptions import PlanError, UnauthorizedError


@dataclass
class ExtendedPlan:
    """A minimally extended authorized query plan and its metadata.

    Attributes
    ----------
    plan:
        The extended plan (original operators plus Encrypt/Decrypt nodes).
    original:
        The input plan.
    assignment:
        Subject name for every non-leaf node of the extended plan.
    encrypted_attributes:
        All attributes appearing in some encryption operation (the ``Ak``
        set of Definition 6.1).
    source_encryption:
        Relation name → attributes encrypted at the source (by the owning
        data authority, as in Figure 7 where I encrypts C and P of Ins).
    """

    plan: QueryPlan
    original: QueryPlan
    assignment: dict[PlanNode, str]
    encrypted_attributes: frozenset[str]
    source_encryption: dict[str, frozenset[str]] = field(default_factory=dict)

    def assignee(self, node: PlanNode) -> str:
        """Assignee of an extended-plan node.

        Plan nodes hash by identity, so this is a live O(1) lookup in
        the public ``assignment`` dict.
        """
        subject = self.assignment.get(node)
        if subject is None:
            raise PlanError(f"node {node!r} has no assignee")
        return subject

    def encryption_operations(self) -> tuple[Encrypt, ...]:
        """All encryption nodes, in post-order."""
        return tuple(
            n for n in self.plan.postorder() if isinstance(n, Encrypt)
        )

    def decryption_operations(self) -> tuple[Decrypt, ...]:
        """All decryption nodes, in post-order."""
        return tuple(
            n for n in self.plan.postorder() if isinstance(n, Decrypt)
        )

    def describe(self) -> str:
        """Tree rendering with assignees and profiles (Figure 7 style)."""
        profiles = self.plan.profiles()
        annotations = {}
        for node in self.plan.nodes():
            subject = self.assignment.get(node)
            tag = profiles[node].describe()
            annotations[node] = f"@{subject}  {tag}" if subject else tag
        return self.plan.pretty(annotations)


def minimally_extend(
    plan: QueryPlan,
    policy: Policy,
    assignment: Mapping[PlanNode, str],
    requirements: Mapping[PlanNode, frozenset[str]] | None = None,
    capabilities: SchemeCapabilities | None = None,
    owners: Mapping[str, str] | None = None,
    deliver_to: str | None = None,
    verify: bool = True,
    opportunistic_decryption: bool = True,
) -> ExtendedPlan:
    """Build the minimally extended authorized plan for ``assignment``.

    Parameters
    ----------
    plan:
        The original query plan (must not already contain Encrypt/Decrypt
        nodes).
    policy:
        Authorization policy, used for the subjects' ``E_S`` sets.
    assignment:
        ``λ``: subject name for every operation of ``plan``; must be drawn
        from the candidate sets Λ for the result to verify.
    requirements:
        The per-node plaintext requirement ``Ap``; inferred when omitted.
    owners:
        Relation name → data-authority subject performing encryption at
        the source.  When omitted, source encryptions are assigned to the
        synthetic subject ``"authority:<relation>"``.
    deliver_to:
        When given, a final decryption of all visible encrypted attributes
        is appended for delivery to this subject (the querying user).
    verify:
        Re-check Definition 4.2 on the extended plan (Theorem 5.3(i)).
    opportunistic_decryption:
        §6 combines assignment and extension: when an operation's
        assignee is authorized for the plaintext of an attribute it
        computes on, decrypt it and evaluate in the clear rather than on
        ciphertext — avoiding Paillier/OPE where a cheap randomized
        scheme suffices.  Trace-protected attributes (the Def. 5.4(ii)
        ``A`` term) are never decrypted.  Adds decryption operations
        only — the encrypted attribute set of Theorem 5.3(ii) is
        untouched.  Disable to get the letter of Definition 5.4.

    Returns
    -------
    ExtendedPlan
        The extended plan with assignees for every operation, including
        the injected encryption/decryption steps.
    """
    for node in plan.postorder():
        if isinstance(node, (Encrypt, Decrypt)):
            raise PlanError(
                "minimally_extend expects a plan without crypto operations"
            )
    if requirements is None:
        requirements = infer_plaintext_requirements(plan, capabilities)
    lineage = derived_lineage(plan)

    def subject_view(subject: str):
        return augment_view(policy.view(subject), lineage)

    assignment_map: NodeMap[str] = NodeMap(assignment)
    requirement_map: NodeMap[frozenset[str]] = NodeMap(requirements)

    def lam(node: PlanNode) -> str:
        subject = assignment_map.get(node)
        if subject is None:
            raise PlanError(f"assignment does not cover node {node.label()}")
        return subject

    def plaintext_needed(node: PlanNode) -> frozenset[str]:
        return requirement_map.get(node, frozenset())

    # Union of E_Sx over the strict ancestors of each node (the ``A`` term
    # of Definition 5.4(ii) ranges over the assignees above the node).
    ancestor_encrypted: dict[int, frozenset[str]] = {id(plan.root): frozenset()}
    for node in reversed(plan.nodes()):  # reverse post-order = parents first
        if node.is_leaf:
            continue
        inherited = (ancestor_encrypted[id(node)]
                     | subject_view(lam(node)).encrypted)
        for child in node.children:
            ancestor_encrypted[id(child)] = inherited

    extended: dict[int, PlanNode] = {}
    current_profile: dict[int, RelationProfile] = {}
    new_assignment: dict[PlanNode, str] = {}
    encrypted_attributes: set[str] = set()
    source_encryption: dict[str, frozenset[str]] = {}

    for node in plan.postorder():
        if node.is_leaf:
            built: PlanNode = node.with_children(())
            profile = built.output_profile()
            subject = None
        else:
            subject = lam(node)
            needed = plaintext_needed(node)
            protected = (node.implicit_introduced()
                         & ancestor_encrypted[id(node)])
            if opportunistic_decryption:
                view = subject_view(subject)
                decryptable = {
                    attribute
                    for attribute, _capability in _node_demands(node)
                    if attribute in view.plaintext
                    and attribute not in protected
                }
                needed = needed | decryptable
            operands: list[PlanNode] = []
            operand_profiles: list[RelationProfile] = []
            for child in node.children:
                child_built = extended[id(child)]
                child_profile = current_profile[id(child)]
                to_decrypt = needed & child_profile.visible_encrypted
                if to_decrypt:
                    child_built = Decrypt(child_built, to_decrypt)
                    child_profile = child_profile.decrypt(to_decrypt)
                    new_assignment[child_built] = subject
                operands.append(child_built)
                operand_profiles.append(child_profile)

            operands, operand_profiles = _harmonise_forms(
                node, operands, operand_profiles, subject_view(subject),
                subject, new_assignment, encrypted_attributes, protected,
            )
            built = node.with_children(operands)
            profile = node.output_profile(*operand_profiles)
            new_assignment[built] = subject

        parent = plan.parent(node)
        if parent is not None:
            parent_subject = lam(parent)
            encrypted_only = subject_view(parent_subject).encrypted
            implicit_at_parent = (
                parent.implicit_introduced() & profile.visible_plaintext
            )
            trace_term = implicit_at_parent & ancestor_encrypted[id(node)]
            conflict = trace_term & plaintext_needed(parent)
            if conflict:
                raise UnauthorizedError(
                    f"attributes {sorted(conflict)} must stay plaintext for "
                    f"{parent.label()} but an ancestor assignee may only see "
                    f"them encrypted; the assignment is not in Λ"
                )
            to_encrypt = (encrypted_only & profile.visible_plaintext) | trace_term
            if to_encrypt:
                built = Encrypt(built, to_encrypt)
                profile = profile.encrypt(to_encrypt)
                encrypted_attributes |= to_encrypt
                if node.is_leaf:
                    assert isinstance(node, BaseRelationNode)
                    relation_name = node.relation.name
                    owner = (owners or {}).get(
                        relation_name, f"authority:{relation_name}"
                    )
                    new_assignment[built] = owner
                    source_encryption[relation_name] = frozenset(to_encrypt)
                else:
                    new_assignment[built] = subject
        elif deliver_to is not None and profile.visible_encrypted:
            built = Decrypt(built, profile.visible_encrypted)
            profile = profile.decrypt(profile.visible_encrypted)
            new_assignment[built] = deliver_to

        extended[id(node)] = built
        current_profile[id(node)] = profile

    result = ExtendedPlan(
        plan=QueryPlan(extended[id(plan.root)]),
        original=plan,
        assignment=new_assignment,
        encrypted_attributes=frozenset(encrypted_attributes),
        source_encryption=source_encryption,
    )
    if verify:
        verify_assignment(result.plan, policy, result.assignment)
    return result


def _harmonise_forms(
    node: PlanNode,
    operands: list[PlanNode],
    operand_profiles: list[RelationProfile],
    view,
    subject: str,
    new_assignment: dict[PlanNode, str],
    encrypted_attributes: set[str],
    protected: frozenset[str] = frozenset(),
) -> tuple[list[PlanNode], list[RelationProfile]]:
    """Make comparison/udf operands representation-uniform.

    Comparisons (and udf input sets) must see their attributes either all
    plaintext or all encrypted.  When earlier steps left a mix, decrypt
    the encrypted side if the assignee is authorized for its plaintext
    (no new encrypted attributes → minimality preserved); otherwise
    encrypt the plaintext side.  Attributes in ``protected`` were
    encrypted for the Definition 5.4(ii) trace term — this operation is
    about to turn them implicit and some ancestor may only see them
    encrypted — so they must never be decrypted here: their comparison
    partners are encrypted instead.
    """
    pairs: list[frozenset[str]] = []
    if isinstance(node, (Selection, Join)):
        predicate = node.predicate if isinstance(node, Selection) \
            else node.condition
        pairs = [
            basic.attributes()
            for basic in predicate.basic_conditions()
            if isinstance(basic, AttributeComparisonPredicate)
        ]
    elif isinstance(node, Udf) and len(node.inputs) > 1:
        pairs = [node.inputs]
    if not pairs:
        return operands, operand_profiles

    decrypt_per_operand: list[set[str]] = [set() for _ in operands]
    encrypt_per_operand: list[set[str]] = [set() for _ in operands]

    def locate(attribute: str) -> int:
        for index, profile in enumerate(operand_profiles):
            if attribute in profile.visible:
                return index
        raise PlanError(f"attribute {attribute!r} not visible in any operand")

    combined_plain: set[str] = set()
    combined_encrypted: set[str] = set()
    for profile in operand_profiles:
        combined_plain |= profile.visible_plaintext
        combined_encrypted |= profile.visible_encrypted
    # Account for decryptions/encryptions planned in this very pass, and
    # iterate to a fixpoint: encrypting one comparison's operand can make
    # another comparison of the same conjunction mixed.
    locally_pinned: set[str] = set()
    changed = True
    while changed:
        changed = False
        for group in pairs:
            plain = group & combined_plain
            encrypted = group & combined_encrypted
            if not plain or not encrypted:
                continue
            may_decrypt = (not encrypted & protected
                           and not encrypted & locally_pinned
                           and all(a in view.plaintext for a in encrypted))
            if may_decrypt:
                for attribute in encrypted:
                    decrypt_per_operand[locate(attribute)].add(attribute)
                    encrypt_per_operand[locate(attribute)].discard(attribute)
                    combined_plain.add(attribute)
                    combined_encrypted.discard(attribute)
            else:
                for attribute in plain:
                    encrypt_per_operand[locate(attribute)].add(attribute)
                    decrypt_per_operand[locate(attribute)].discard(attribute)
                    combined_encrypted.add(attribute)
                    combined_plain.discard(attribute)
                    locally_pinned.add(attribute)
            changed = True
            break
    # Drop no-ops introduced while searching for the fixpoint.
    for index, profile in enumerate(operand_profiles):
        decrypt_per_operand[index] &= set(profile.visible_encrypted)
        encrypt_per_operand[index] &= set(profile.visible_plaintext)

    for index in range(len(operands)):
        if decrypt_per_operand[index]:
            operands[index] = Decrypt(operands[index], decrypt_per_operand[index])
            operand_profiles[index] = operand_profiles[index].decrypt(
                decrypt_per_operand[index]
            )
            new_assignment[operands[index]] = subject
        if encrypt_per_operand[index]:
            operands[index] = Encrypt(operands[index], encrypt_per_operand[index])
            operand_profiles[index] = operand_profiles[index].encrypt(
                encrypt_per_operand[index]
            )
            encrypted_attributes |= encrypt_per_operand[index]
            new_assignment[operands[index]] = subject
    return operands, operand_profiles


def extension_encrypted_attributes(plan: QueryPlan) -> frozenset[str]:
    """The ``Ak`` set of a (possibly extended) plan: all encrypted attrs."""
    attrs: set[str] = set()
    for node in plan.postorder():
        if isinstance(node, Encrypt):
            attrs |= node.attributes
    return frozenset(attrs)

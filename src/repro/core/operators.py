"""Query-plan nodes and the profile-propagation rules of Figure 2.

A query plan is a tree whose leaves are base relations and whose internal
nodes are relational operations (§1).  Each node class implements:

* ``output_attributes`` — the visible schema of the produced relation;
* ``output_profile`` — the Figure 2 rule computing the result profile from
  the operand profiles;
* ``implicit_introduced`` — the attributes the operation newly moves into
  the implicit component (used by Definition 5.4(ii));
* ``equivalences_introduced`` — the attribute sets the operation connects
  (used for key establishment and by Definition 5.4).

Nodes use identity semantics (two structurally equal nodes are still
distinct plan positions), which lets plans serve as dictionary keys for
profiles, assignments, and candidate sets.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import enum
from dataclasses import dataclass

from repro.core.predicates import (
    AttributeComparisonPredicate,
    AttributeValuePredicate,
    ComparisonOp,
    Conjunction,
    EncryptedCapability,
    Predicate,
)
from repro.core.profile import RelationProfile
from repro.core.schema import Relation
from repro.exceptions import OperationRequirementError, PlanError


class AggregateFunction(enum.Enum):
    """Aggregate functions supported by the group-by operator."""

    SUM = "sum"
    AVG = "avg"
    MIN = "min"
    MAX = "max"
    COUNT = "count"

    def __str__(self) -> str:
        return self.value


_AGGREGATE_CAPABILITY = {
    AggregateFunction.SUM: EncryptedCapability.ADDITION,
    AggregateFunction.AVG: EncryptedCapability.ADDITION,
    AggregateFunction.MIN: EncryptedCapability.ORDER,
    AggregateFunction.MAX: EncryptedCapability.ORDER,
    AggregateFunction.COUNT: EncryptedCapability.EQUALITY,
}


@dataclass(frozen=True)
class Aggregate:
    """An aggregate ``f(a)``; ``attribute`` is ``None`` for ``count(*)``.

    Following the paper's convention, the output column keeps the name of
    the aggregated attribute (``avg(P)`` is still called ``P``).  An
    optional ``alias`` renames the output — the renaming extension the
    paper's footnote 1 anticipates; an aliased output stays *equivalent*
    to its source attribute in the profile (its values derive from it),
    except for ``count(*)``, whose output is a fresh plaintext counter.
    """

    function: AggregateFunction
    attribute: str | None = None
    alias: str | None = None

    def __post_init__(self) -> None:
        if self.attribute is None \
                and self.function is not AggregateFunction.COUNT:
            raise PlanError(f"{self.function} requires an attribute")
        if self.attribute is None and self.alias is None:
            raise PlanError("count(*) needs an alias to appear in the output")

    @property
    def output_name(self) -> str:
        """Name of the produced column."""
        if self.alias is not None:
            return self.alias
        assert self.attribute is not None
        return self.attribute

    def required_capability(self) -> EncryptedCapability:
        """Scheme capability needed to aggregate encrypted values."""
        return _AGGREGATE_CAPABILITY[self.function]

    def __str__(self) -> str:
        body = f"{self.function}({self.attribute or '*'})"
        if self.alias is not None and self.alias != self.attribute:
            return f"{body} as {self.alias}"
        return body


class PlanNode:
    """Base class of all plan nodes.  Nodes compare by identity."""

    __slots__ = ("children",)

    children: tuple["PlanNode", ...]

    def __init__(self, children: Sequence["PlanNode"]) -> None:
        self.children = tuple(children)

    # -- structure -----------------------------------------------------
    @property
    def is_leaf(self) -> bool:
        """Whether the node is a base relation."""
        return not self.children

    @property
    def left(self) -> "PlanNode":
        """First operand (for unary and binary operators)."""
        return self.children[0]

    @property
    def right(self) -> "PlanNode":
        """Second operand (binary operators only)."""
        return self.children[1]

    def with_children(self, children: Sequence["PlanNode"]) -> "PlanNode":
        """A copy of this node with new operands (for plan rewriting)."""
        raise NotImplementedError

    # -- semantics ------------------------------------------------------
    def output_attributes(self, *child_attrs: frozenset[str]) -> frozenset[str]:
        """Visible schema of the produced relation."""
        raise NotImplementedError

    def output_profile(self, *child_profiles: RelationProfile) -> RelationProfile:
        """Figure 2 rule for this operator."""
        raise NotImplementedError

    def implicit_introduced(self) -> frozenset[str]:
        """Attributes this operation newly adds to the implicit component."""
        return frozenset()

    def equivalences_introduced(self) -> tuple[frozenset[str], ...]:
        """Attribute sets this operation connects in ``R≃``."""
        return ()

    def operand_attributes(self) -> frozenset[str]:
        """Attributes of the operands this operation reads."""
        return frozenset()

    def required_capability(self) -> EncryptedCapability:
        """Capability needed to run this operation on encrypted operands."""
        return EncryptedCapability.EQUALITY

    def label(self) -> str:
        """Short human-readable operator label (paper notation)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{self.label()} at {id(self):#x}>"

    # -- shared validation helpers --------------------------------------
    @staticmethod
    def _check_visible(profile: RelationProfile, attributes: Iterable[str],
                       what: str) -> None:
        missing = frozenset(attributes) - profile.visible
        if missing:
            raise OperationRequirementError(
                f"{what} references attributes not in the operand schema: "
                f"{sorted(missing)}"
            )

    @staticmethod
    def _check_uniform_form(profile: RelationProfile, first: str,
                            second: str) -> None:
        """Comparisons need both attributes plaintext or both encrypted."""
        plain = profile.visible_plaintext
        enc = profile.visible_encrypted
        if not ((first in plain and second in plain)
                or (first in enc and second in enc)):
            raise OperationRequirementError(
                f"condition compares {first} and {second} in different "
                f"representations (one plaintext, one encrypted)"
            )


class BaseRelationNode(PlanNode):
    """A leaf of the plan: a (projection of a) stored base relation.

    Per §1, "we represent a leaf node as a square box that contains (the
    projection of) a source relation": classical optimization pushes
    projections down into the leaves, so a leaf may expose only a subset
    of the stored attributes.  Leaves have no assignee — they stay with
    the data authority holding the relation.
    """

    __slots__ = ("relation", "projection")

    def __init__(self, relation: Relation,
                 projection: Iterable[str] | None = None) -> None:
        super().__init__(())
        self.relation = relation
        if projection is None:
            self.projection = relation.attribute_set
        else:
            self.projection = frozenset(projection)
            unknown = self.projection - relation.attribute_set
            if unknown:
                raise PlanError(
                    f"leaf projection keeps unknown attributes "
                    f"{sorted(unknown)} of relation {relation.name}"
                )
            if not self.projection:
                raise PlanError("leaf projection must keep some attribute")

    def with_children(self, children: Sequence[PlanNode]) -> "BaseRelationNode":
        if children:
            raise PlanError("base relations have no operands")
        return BaseRelationNode(self.relation, self.projection)

    def output_attributes(self, *child_attrs: frozenset[str]) -> frozenset[str]:
        return self.projection

    def output_profile(self, *child_profiles: RelationProfile) -> RelationProfile:
        if child_profiles:
            raise PlanError("base relations take no operand profiles")
        return RelationProfile.for_base_relation(self.projection)

    def label(self) -> str:
        kept = [a for a in self.relation.attribute_names if a in self.projection]
        prefix = ""
        if self.projection != self.relation.attribute_set:
            prefix = f"π[{','.join(kept)}] "
        return f"{prefix}{self.relation.name}({','.join(kept)})"


class Projection(PlanNode):
    """``π_A`` — keep only attributes ``A`` (Fig. 2 projection row)."""

    __slots__ = ("attributes",)

    def __init__(self, child: PlanNode, attributes: Iterable[str]) -> None:
        super().__init__((child,))
        self.attributes = frozenset(attributes)
        if not self.attributes:
            raise PlanError("projection must keep at least one attribute")

    def with_children(self, children: Sequence[PlanNode]) -> "Projection":
        (child,) = children
        return Projection(child, self.attributes)

    def output_attributes(self, *child_attrs: frozenset[str]) -> frozenset[str]:
        (attrs,) = child_attrs
        missing = self.attributes - attrs
        if missing:
            raise OperationRequirementError(
                f"projection keeps unknown attributes {sorted(missing)}"
            )
        return self.attributes

    def output_profile(self, *child_profiles: RelationProfile) -> RelationProfile:
        (profile,) = child_profiles
        self._check_visible(profile, self.attributes, "projection")
        return profile.project(self.attributes)

    def label(self) -> str:
        return f"π[{','.join(sorted(self.attributes))}]"


class Selection(PlanNode):
    """``σ_condition`` — filter tuples (Fig. 2 selection rows).

    A condition ``a op x`` adds ``a`` to the implicit component; a
    condition ``ai op aj`` adds ``{ai, aj}`` to the equivalences.
    Conjunctions contribute each basic condition independently.
    """

    __slots__ = ("predicate",)

    def __init__(self, child: PlanNode, predicate: Predicate) -> None:
        super().__init__((child,))
        if not isinstance(predicate, Predicate):
            raise PlanError(f"selection needs a Predicate, got {predicate!r}")
        self.predicate = predicate

    def with_children(self, children: Sequence[PlanNode]) -> "Selection":
        (child,) = children
        return Selection(child, self.predicate)

    def output_attributes(self, *child_attrs: frozenset[str]) -> frozenset[str]:
        (attrs,) = child_attrs
        missing = self.predicate.attributes() - attrs
        if missing:
            raise OperationRequirementError(
                f"selection references unknown attributes {sorted(missing)}"
            )
        return attrs

    def output_profile(self, *child_profiles: RelationProfile) -> RelationProfile:
        (profile,) = child_profiles
        self._check_visible(profile, self.predicate.attributes(), "selection")
        result = profile
        for basic in self.predicate.basic_conditions():
            if isinstance(basic, AttributeValuePredicate):
                result = result.add_implicit({basic.attribute})
            elif isinstance(basic, AttributeComparisonPredicate):
                self._check_uniform_form(profile, basic.left, basic.right)
                result = result.add_equivalence({basic.left, basic.right})
            else:  # pragma: no cover - Conjunction flattens its members
                raise PlanError(f"unsupported basic condition {basic!r}")
        return result

    def implicit_introduced(self) -> frozenset[str]:
        introduced: set[str] = set()
        for basic in self.predicate.basic_conditions():
            if isinstance(basic, AttributeValuePredicate):
                introduced.add(basic.attribute)
        return frozenset(introduced)

    def equivalences_introduced(self) -> tuple[frozenset[str], ...]:
        return tuple(
            basic.attributes()
            for basic in self.predicate.basic_conditions()
            if isinstance(basic, AttributeComparisonPredicate)
        )

    def operand_attributes(self) -> frozenset[str]:
        return self.predicate.attributes()

    def required_capability(self) -> EncryptedCapability:
        return self.predicate.required_capability()

    def label(self) -> str:
        return f"σ[{self.predicate}]"


class CartesianProduct(PlanNode):
    """``×`` — all combinations of the operands' tuples (Fig. 2 row)."""

    def __init__(self, left: PlanNode, right: PlanNode) -> None:
        super().__init__((left, right))

    def with_children(self, children: Sequence[PlanNode]) -> "CartesianProduct":
        left, right = children
        return CartesianProduct(left, right)

    def output_attributes(self, *child_attrs: frozenset[str]) -> frozenset[str]:
        left, right = child_attrs
        if left & right:
            raise PlanError(
                f"operand schemas overlap on {sorted(left & right)}"
            )
        return left | right

    def output_profile(self, *child_profiles: RelationProfile) -> RelationProfile:
        left, right = child_profiles
        return left.combine(right)

    def label(self) -> str:
        return "×"


class Join(PlanNode):
    """``⋈_C`` — join on a Boolean formula of ``ai op aj`` conditions.

    Equivalent to ``σ_C(Rl × Rr)`` (Fig. 2 join row): the result profile
    is the componentwise union of the operand profiles, plus one
    equivalence class per basic condition.
    """

    __slots__ = ("condition",)

    def __init__(self, left: PlanNode, right: PlanNode,
                 condition: Predicate) -> None:
        super().__init__((left, right))
        basics = list(condition.basic_conditions())
        if not basics or not all(
            isinstance(b, AttributeComparisonPredicate) for b in basics
        ):
            raise PlanError(
                "join conditions must be formulas of attribute comparisons"
            )
        self.condition = condition

    def with_children(self, children: Sequence[PlanNode]) -> "Join":
        left, right = children
        return Join(left, right, self.condition)

    def output_attributes(self, *child_attrs: frozenset[str]) -> frozenset[str]:
        left, right = child_attrs
        if left & right:
            raise PlanError(
                f"operand schemas overlap on {sorted(left & right)}"
            )
        missing = self.condition.attributes() - (left | right)
        if missing:
            raise OperationRequirementError(
                f"join condition references unknown attributes {sorted(missing)}"
            )
        return left | right

    def output_profile(self, *child_profiles: RelationProfile) -> RelationProfile:
        left, right = child_profiles
        combined = left.combine(right)
        self._check_visible(combined, self.condition.attributes(), "join")
        result = combined
        for basic in self.condition.basic_conditions():
            assert isinstance(basic, AttributeComparisonPredicate)
            self._check_uniform_form(combined, basic.left, basic.right)
            result = result.add_equivalence({basic.left, basic.right})
        return result

    def equivalences_introduced(self) -> tuple[frozenset[str], ...]:
        return tuple(
            basic.attributes() for basic in self.condition.basic_conditions()
        )

    def partition_condition(
        self, left_columns: Iterable[str], right_columns: Iterable[str],
    ) -> tuple[list[tuple[str, str]],
               list[AttributeComparisonPredicate]]:
        """Split the condition for hash-partitioned execution.

        Returns ``(equalities, residual)``: every equality conjunct that
        bridges the two operands becomes an ``(left_attr, right_attr)``
        pair the executor can build/probe a hash table on; everything
        else (non-equality operators, or comparisons confined to one
        operand) is a residual conjunct to test per matched pair.
        """
        left_set = frozenset(left_columns)
        right_set = frozenset(right_columns)
        equalities: list[tuple[str, str]] = []
        residual: list[AttributeComparisonPredicate] = []
        for basic in self.condition.basic_conditions():
            assert isinstance(basic, AttributeComparisonPredicate)
            if basic.op is ComparisonOp.EQ:
                left_attr, right_attr = basic.left, basic.right
                if left_attr in right_set and right_attr in left_set:
                    left_attr, right_attr = right_attr, left_attr
                if left_attr in left_set and right_attr in right_set:
                    equalities.append((left_attr, right_attr))
                    continue
            residual.append(basic)
        return equalities, residual

    def operand_attributes(self) -> frozenset[str]:
        return self.condition.attributes()

    def required_capability(self) -> EncryptedCapability:
        return self.condition.required_capability()

    def label(self) -> str:
        return f"⋈[{self.condition}]"


class GroupBy(PlanNode):
    """``γ_{A, f(a)}`` — group on ``A`` and aggregate (Fig. 2 row).

    The visible attributes of the result are ``A`` plus one output per
    aggregate (named after the aggregated attribute, or its alias); the
    grouping attributes are added to the implicit component in the form
    they are visible in the operand.  Multiple aggregates apply the
    Figure 2 rule per aggregate; aliased outputs join their source
    attribute's equivalence class (their values derive from it).
    """

    __slots__ = ("group_attributes", "aggregates")

    def __init__(self, child: PlanNode, group_attributes: Iterable[str],
                 aggregates: Aggregate | Sequence[Aggregate]) -> None:
        super().__init__((child,))
        self.group_attributes = frozenset(group_attributes)
        if isinstance(aggregates, Aggregate):
            aggregates = (aggregates,)
        self.aggregates = tuple(aggregates)
        if not self.aggregates:
            raise PlanError("group-by needs at least one aggregate")
        outputs: set[str] = set()
        for aggregate in self.aggregates:
            name = aggregate.output_name
            if name in self.group_attributes and aggregate.alias is not None:
                raise PlanError(
                    f"aggregate alias {name!r} collides with a grouping "
                    f"attribute"
                )
            if name in outputs:
                raise PlanError(
                    f"two aggregates produce the same output {name!r}; "
                    f"use aliases"
                )
            outputs.add(name)
            if aggregate.attribute is not None \
                    and aggregate.attribute in self.group_attributes:
                raise PlanError(
                    f"aggregate attribute {aggregate.attribute!r} also "
                    f"appears in the grouping attributes"
                )

    @property
    def aggregate(self) -> Aggregate:
        """The first aggregate (the paper's single-aggregate γ)."""
        return self.aggregates[0]

    def with_children(self, children: Sequence[PlanNode]) -> "GroupBy":
        (child,) = children
        return GroupBy(child, self.group_attributes, self.aggregates)

    def _sources(self) -> frozenset[str]:
        """Operand attributes the operation reads."""
        sources = set(self.group_attributes)
        for aggregate in self.aggregates:
            if aggregate.attribute is not None:
                sources.add(aggregate.attribute)
        return frozenset(sources)

    def _outputs(self) -> frozenset[str]:
        return self.group_attributes | {
            a.output_name for a in self.aggregates
        }

    def output_attributes(self, *child_attrs: frozenset[str]) -> frozenset[str]:
        (attrs,) = child_attrs
        missing = self._sources() - attrs
        if missing:
            raise OperationRequirementError(
                f"group-by references unknown attributes {sorted(missing)}"
            )
        return self._outputs()

    def output_profile(self, *child_profiles: RelationProfile) -> RelationProfile:
        (profile,) = child_profiles
        self._check_visible(profile, self._sources(), "group-by")
        visible_plaintext = set(profile.visible_plaintext
                                & self.group_attributes)
        visible_encrypted = set(profile.visible_encrypted
                                & self.group_attributes)
        equivalences = profile.equivalences
        for aggregate in self.aggregates:
            name = aggregate.output_name
            if aggregate.attribute is None:
                # count(*): a fresh plaintext counter with no lineage.
                visible_plaintext.add(name)
                continue
            if aggregate.attribute in profile.visible_encrypted:
                visible_encrypted.add(name)
            else:
                visible_plaintext.add(name)
            if name != aggregate.attribute:
                equivalences = equivalences.union_set(
                    {aggregate.attribute, name}
                )
        return RelationProfile(
            visible_plaintext=frozenset(visible_plaintext),
            visible_encrypted=frozenset(visible_encrypted),
            implicit_plaintext=profile.implicit_plaintext
            | (profile.visible_plaintext & self.group_attributes),
            implicit_encrypted=profile.implicit_encrypted
            | (profile.visible_encrypted & self.group_attributes),
            equivalences=equivalences,
        )

    def implicit_introduced(self) -> frozenset[str]:
        return self.group_attributes

    def equivalences_introduced(self) -> tuple[frozenset[str], ...]:
        return tuple(
            frozenset({a.attribute, a.output_name})
            for a in self.aggregates
            if a.attribute is not None and a.output_name != a.attribute
        )

    def operand_attributes(self) -> frozenset[str]:
        return self._sources()

    def required_capability(self) -> EncryptedCapability:
        strongest = EncryptedCapability.EQUALITY
        for aggregate in self.aggregates:
            capability = aggregate.required_capability()
            if capability is EncryptedCapability.NONE:
                return EncryptedCapability.NONE
            if capability is EncryptedCapability.ADDITION:
                strongest = EncryptedCapability.ADDITION
            elif capability is EncryptedCapability.ORDER \
                    and strongest is EncryptedCapability.EQUALITY:
                strongest = EncryptedCapability.ORDER
        return strongest

    def label(self) -> str:
        group = ",".join(sorted(self.group_attributes))
        aggs = ", ".join(str(a) for a in self.aggregates)
        return f"γ[{group}; {aggs}]"


class Udf(PlanNode):
    """``µ_{A,a}`` — user-defined function over attributes ``A`` (Fig. 2 row).

    The output attribute keeps the name of one of the inputs (``a ∈ A``);
    the inputs are connected in the equivalence component because the
    output value depends on all of them.

    ``encrypted_capable`` declares whether an encrypted-execution variant
    of the function exists (§5: operations "not supported by cryptographic
    techniques" require their inputs in plaintext).
    """

    __slots__ = ("inputs", "output", "encrypted_capable", "name")

    def __init__(self, child: PlanNode, inputs: Iterable[str], output: str,
                 encrypted_capable: bool = False,
                 name: str = "udf") -> None:
        super().__init__((child,))
        self.inputs = frozenset(inputs)
        self.output = output
        self.encrypted_capable = encrypted_capable
        self.name = name
        if output not in self.inputs:
            raise PlanError(
                f"udf output {output!r} must be named after one of its "
                f"inputs {sorted(self.inputs)}"
            )

    def with_children(self, children: Sequence[PlanNode]) -> "Udf":
        (child,) = children
        return Udf(child, self.inputs, self.output, self.encrypted_capable,
                   self.name)

    def output_attributes(self, *child_attrs: frozenset[str]) -> frozenset[str]:
        (attrs,) = child_attrs
        missing = self.inputs - attrs
        if missing:
            raise OperationRequirementError(
                f"udf references unknown attributes {sorted(missing)}"
            )
        return attrs - (self.inputs - {self.output})

    def output_profile(self, *child_profiles: RelationProfile) -> RelationProfile:
        (profile,) = child_profiles
        self._check_visible(profile, self.inputs, "udf")
        consumed = self.inputs - {self.output}
        # The inputs must be all plaintext or all encrypted (§3.2).
        plain = self.inputs & profile.visible_plaintext
        if plain and plain != self.inputs:
            raise OperationRequirementError(
                f"udf inputs {sorted(self.inputs)} mix plaintext and "
                f"encrypted attributes"
            )
        return RelationProfile(
            visible_plaintext=profile.visible_plaintext - consumed,
            visible_encrypted=profile.visible_encrypted - consumed,
            implicit_plaintext=profile.implicit_plaintext,
            implicit_encrypted=profile.implicit_encrypted,
            equivalences=profile.equivalences.union_set(self.inputs),
        )

    def equivalences_introduced(self) -> tuple[frozenset[str], ...]:
        if len(self.inputs) > 1:
            return (self.inputs,)
        return ()

    def operand_attributes(self) -> frozenset[str]:
        return self.inputs

    def required_capability(self) -> EncryptedCapability:
        if self.encrypted_capable:
            return EncryptedCapability.EQUALITY
        return EncryptedCapability.NONE

    def label(self) -> str:
        return f"µ:{self.name}[{','.join(sorted(self.inputs))}→{self.output}]"


class Encrypt(PlanNode):
    """On-the-fly encryption of visible plaintext attributes (§5)."""

    __slots__ = ("attributes",)

    def __init__(self, child: PlanNode, attributes: Iterable[str]) -> None:
        super().__init__((child,))
        self.attributes = frozenset(attributes)
        if not self.attributes:
            raise PlanError("encryption must cover at least one attribute")

    def with_children(self, children: Sequence[PlanNode]) -> "Encrypt":
        (child,) = children
        return Encrypt(child, self.attributes)

    def output_attributes(self, *child_attrs: frozenset[str]) -> frozenset[str]:
        (attrs,) = child_attrs
        missing = self.attributes - attrs
        if missing:
            raise OperationRequirementError(
                f"encryption of unknown attributes {sorted(missing)}"
            )
        return attrs

    def output_profile(self, *child_profiles: RelationProfile) -> RelationProfile:
        (profile,) = child_profiles
        return profile.encrypt(self.attributes)

    def operand_attributes(self) -> frozenset[str]:
        return self.attributes

    def label(self) -> str:
        return f"enc[{','.join(sorted(self.attributes))}]"


class Decrypt(PlanNode):
    """On-the-fly decryption of visible encrypted attributes (§5)."""

    __slots__ = ("attributes",)

    def __init__(self, child: PlanNode, attributes: Iterable[str]) -> None:
        super().__init__((child,))
        self.attributes = frozenset(attributes)
        if not self.attributes:
            raise PlanError("decryption must cover at least one attribute")

    def with_children(self, children: Sequence[PlanNode]) -> "Decrypt":
        (child,) = children
        return Decrypt(child, self.attributes)

    def output_attributes(self, *child_attrs: frozenset[str]) -> frozenset[str]:
        (attrs,) = child_attrs
        missing = self.attributes - attrs
        if missing:
            raise OperationRequirementError(
                f"decryption of unknown attributes {sorted(missing)}"
            )
        return attrs

    def output_profile(self, *child_profiles: RelationProfile) -> RelationProfile:
        (profile,) = child_profiles
        return profile.decrypt(self.attributes)

    def operand_attributes(self) -> frozenset[str]:
        return self.attributes

    def label(self) -> str:
        return f"dec[{','.join(sorted(self.attributes))}]"


#: Node classes introduced by plan extension rather than by the query.
CRYPTO_NODE_TYPES = (Encrypt, Decrypt)

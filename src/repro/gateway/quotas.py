"""Per-tenant quotas: token-bucket rate limits and credit gates.

Two independent quota dimensions gate admission, both checked *before*
any planning work is spent on a query:

* **rate** — a classic :class:`TokenBucket`: ``rate_per_second`` tokens
  accrue continuously up to a ``burst`` capacity and each admitted
  query consumes one.  An empty bucket rejects with
  :class:`~repro.exceptions.QuotaExceeded` carrying the exact
  ``retry_after_seconds`` until the next token;
* **credits** — the tenant's prepaid
  :class:`~repro.cost.metering.CreditAccount` must be admissible
  (positive balance).  Credit is debited post-execution with the
  query's actual §7 cost (postpaid metering, see
  :mod:`repro.cost.metering`), so exhaustion rejects every *further*
  query with the tenant's spend-so-far attached.

A third, *advisory* dimension rides along: per-tenant default query
budgets (``deadline_seconds`` / ``cost_ceiling_usd``).  They are not an
admission gate themselves — :meth:`TenantQuota.budget_for` merges them
under any per-query budget the caller requested (the request wins field
by field), and the gateway turns the merged budget into the
:class:`~repro.core.budget.CancellationToken` that bounds the query end
to end.

Time is injected (``clock``), so bucket refill is unit-testable with a
fake clock and never sleeps.
"""

from __future__ import annotations

import threading
import time

from repro.core.budget import QueryBudget
from repro.cost.metering import CreditAccount, Ledger
from repro.exceptions import QuotaExceeded


class TokenBucket:
    """A continuously refilling token bucket (thread-safe).

    ``rate_per_second`` tokens accrue per second up to ``burst``; the
    bucket starts full.  :meth:`try_acquire` either takes the tokens
    and returns ``None``, or returns the seconds until enough tokens
    will have accrued (never mutating state on refusal).
    """

    def __init__(self, rate_per_second: float, burst: float = 1.0,
                 clock=time.monotonic) -> None:
        if rate_per_second <= 0:
            raise ValueError(
                f"rate_per_second must be positive, "
                f"got {rate_per_second!r}")
        if burst < 1.0:
            raise ValueError(f"burst must be >= 1, got {burst!r}")
        self.rate_per_second = float(rate_per_second)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill_locked(self) -> None:
        now = self._clock()
        elapsed = now - self._updated
        if elapsed > 0:
            self._tokens = min(self.burst,
                               self._tokens + elapsed * self.rate_per_second)
        self._updated = now

    def available(self) -> float:
        """Tokens currently in the bucket."""
        with self._lock:
            self._refill_locked()
            return self._tokens

    def try_acquire(self, tokens: float = 1.0) -> float | None:
        """Take ``tokens`` now (``None``) or report the wait in seconds."""
        if tokens <= 0:
            raise ValueError(f"tokens must be positive, got {tokens!r}")
        if tokens > self.burst:
            raise ValueError(
                f"cannot acquire {tokens!r} tokens from a bucket of "
                f"burst {self.burst!r}")
        with self._lock:
            self._refill_locked()
            if self._tokens >= tokens:
                self._tokens -= tokens
                return None
            return (tokens - self._tokens) / self.rate_per_second


class TenantQuota:
    """One tenant's combined rate + credit admission gate."""

    def __init__(self, tenant: str, *,
                 rate_per_second: float | None = None,
                 burst: float = 1.0,
                 credits_usd: float | None = None,
                 deadline_seconds: float | None = None,
                 cost_ceiling_usd: float | None = None,
                 clock=time.monotonic) -> None:
        self.tenant = tenant
        self.bucket = (None if rate_per_second is None
                       else TokenBucket(rate_per_second, burst,
                                        clock=clock))
        self.account = CreditAccount(tenant, credits_usd=credits_usd)
        # Validates both fields (> 0 or None) via QueryBudget.
        self.default_budget = QueryBudget(
            deadline_seconds=deadline_seconds,
            cost_ceiling_usd=cost_ceiling_usd)

    def budget_for(self, requested: QueryBudget | None) -> QueryBudget | None:
        """The effective budget for one query: request over defaults.

        Field-by-field merge — a requested field wins, a ``None``
        requested field falls back to the tenant default.  Returns
        ``None`` when neither side constrains anything, so unbudgeted
        tenants keep running token-free.
        """
        default = self.default_budget
        if requested is None:
            return None if default.unlimited else default
        deadline = requested.deadline_seconds \
            if requested.deadline_seconds is not None \
            else default.deadline_seconds
        ceiling = requested.cost_ceiling_usd \
            if requested.cost_ceiling_usd is not None \
            else default.cost_ceiling_usd
        if deadline is None and ceiling is None:
            return None
        return QueryBudget(deadline_seconds=deadline,
                           cost_ceiling_usd=ceiling)

    def check(self, ledger: Ledger) -> None:
        """Admit one query or raise :class:`QuotaExceeded`.

        Credits are checked first: a broke tenant must be refused even
        when its rate bucket is full, without consuming a token.  On a
        rate refusal no state changes, so the reported
        ``retry_after_seconds`` stays accurate for the retry.
        """
        spent = ledger.spend_usd(self.tenant)
        if not self.account.admissible:
            raise QuotaExceeded(
                f"tenant {self.tenant!r} has exhausted its credit "
                f"(balance ${self.account.balance_usd:.6f}, "
                f"spent ${spent:.6f}); deposit to continue",
                tenant=self.tenant, reason="credits", spent_usd=spent)
        if self.bucket is not None:
            wait = self.bucket.try_acquire()
            if wait is not None:
                raise QuotaExceeded(
                    f"tenant {self.tenant!r} is over its rate limit "
                    f"({self.bucket.rate_per_second:g} queries/s); "
                    f"retry in {wait:.3f}s",
                    tenant=self.tenant, reason="rate", spent_usd=spent,
                    retry_after_seconds=wait)

    def settle(self, ledger_entry_cost_usd: float) -> float:
        """Debit the executed query's actual cost; new balance."""
        return self.account.debit(ledger_entry_cost_usd)

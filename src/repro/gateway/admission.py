"""Admission control: bounded tenant queues and weighted fair dispatch.

The gateway must keep serving every tenant when total demand exceeds
capacity.  Two cooperating pieces implement that:

:class:`FairScheduler`
    Per-tenant bounded FIFO queues drained by *smooth weighted
    round-robin* (the nginx algorithm): on every dequeue each backlogged
    tenant's current priority grows by its weight, the highest-priority
    tenant is served and pays the total active weight back.  Over any
    window in which a set of tenants stays backlogged, each receives a
    share of dispatches proportional to its weight, within one dispatch
    — deterministic, no randomness, no starvation.  A full queue refuses
    new work with an explicit
    :class:`~repro.exceptions.AdmissionRejected` (lossless load
    shedding: nothing is ever silently dropped).

:class:`AdmissionController`
    Wraps the scheduler with the in-flight bound and blocking dispatch:
    at most ``max_inflight`` admitted queries execute concurrently;
    workers block in :meth:`AdmissionController.acquire` until a request
    and an execution slot are both available.  Dispatches are numbered
    under the same lock that orders them, so the dispatch sequence is
    the ground truth for fairness audits.

:class:`LatencyPredictor`
    The cost-predictive half of graceful degradation: bounded per-SQL
    EWMAs of observed wall time and §7 cost, fed from every completed
    query.  The gateway consults it (falling back to its per-tenant
    query-latency histogram) to refuse work predicted to blow its
    deadline or cost ceiling *before* it is queued — see
    :meth:`~repro.gateway.Gateway.submit`.

Neither class reads the wall clock: queue-wait timestamps are stamped
by the gateway through its injectable ``clock`` callable (following the
:mod:`repro.distributed.health` style), so admission behaviour is fully
deterministic under a fake clock.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from typing import Deque, Iterable

from repro.exceptions import AdmissionRejected

#: Default bound on queued queries per tenant.
DEFAULT_QUEUE_DEPTH = 16

#: Distinct SQL texts the latency predictor tracks (LRU beyond it).
DEFAULT_PREDICTOR_SIZE = 512

#: EWMA smoothing for the predictor: high enough to follow a workload
#: shift within a few queries, low enough to ride out one-off spikes.
DEFAULT_PREDICTOR_ALPHA = 0.3


class LatencyPredictor:
    """Bounded per-SQL EWMAs of wall seconds and §7 cost (thread-safe).

    Keyed by exact SQL text — the repeat-heavy workload this system
    serves makes the text a strong predictor (same text → same plan →
    same assignment via the service's caches).  Unseen text predicts
    ``None``; the gateway then falls back to its per-tenant latency
    histogram, and admits when that too has no signal — prediction
    must never brick a cold start.
    """

    def __init__(self, maxsize: int = DEFAULT_PREDICTOR_SIZE,
                 alpha: float = DEFAULT_PREDICTOR_ALPHA) -> None:
        if not isinstance(maxsize, int) or maxsize < 1:
            raise ValueError(
                f"maxsize must be a positive integer, got {maxsize!r}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha!r}")
        self.alpha = alpha
        self._maxsize = maxsize
        self._ewmas: OrderedDict[str, tuple[float, float]] = OrderedDict()
        self._lock = threading.Lock()

    def observe(self, sql: str, wall_seconds: float,
                cost_usd: float) -> None:
        """Fold one completed query into the EWMAs."""
        with self._lock:
            entry = self._ewmas.get(sql)
            if entry is None:
                self._ewmas[sql] = (wall_seconds, cost_usd)
            else:
                alpha = self.alpha
                self._ewmas[sql] = (
                    alpha * wall_seconds + (1.0 - alpha) * entry[0],
                    alpha * cost_usd + (1.0 - alpha) * entry[1],
                )
            self._ewmas.move_to_end(sql)
            while len(self._ewmas) > self._maxsize:
                self._ewmas.popitem(last=False)

    def predict_seconds(self, sql: str) -> float | None:
        """Expected wall seconds for ``sql`` (None = never observed)."""
        with self._lock:
            entry = self._ewmas.get(sql)
            return None if entry is None else entry[0]

    def predict_cost(self, sql: str) -> float | None:
        """Expected §7 cost in USD for ``sql`` (None = never observed)."""
        with self._lock:
            entry = self._ewmas.get(sql)
            return None if entry is None else entry[1]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ewmas)


class _TenantQueue:
    """One tenant's bounded FIFO plus its smooth-WRR priority state."""

    __slots__ = ("name", "weight", "depth", "items", "priority")

    def __init__(self, name: str, weight: int, depth: int) -> None:
        self.name = name
        self.weight = weight
        self.depth = depth
        self.items: Deque[object] = deque()
        self.priority = 0


class FairScheduler:
    """Smooth weighted round-robin over bounded per-tenant queues.

    Not thread-safe by itself — :class:`AdmissionController` serializes
    access under its condition lock; tests drive it directly.
    """

    def __init__(self) -> None:
        self._queues: dict[str, _TenantQueue] = {}

    def register(self, tenant: str, weight: int = 1,
                 queue_depth: int = DEFAULT_QUEUE_DEPTH) -> None:
        """Add a tenant queue.  Weights and depths must be positive."""
        if tenant in self._queues:
            raise ValueError(f"tenant {tenant!r} already registered")
        if not isinstance(weight, int) or weight < 1:
            raise ValueError(
                f"weight must be a positive integer, got {weight!r}")
        if not isinstance(queue_depth, int) or queue_depth < 1:
            raise ValueError(
                f"queue_depth must be a positive integer, "
                f"got {queue_depth!r}")
        self._queues[tenant] = _TenantQueue(tenant, weight, queue_depth)

    def tenants(self) -> tuple[str, ...]:
        return tuple(self._queues)

    def offer(self, tenant: str, item: object) -> None:
        """Enqueue ``item`` or raise :class:`AdmissionRejected`."""
        queue = self._queues.get(tenant)
        if queue is None:
            raise ValueError(f"unknown tenant {tenant!r}; registered: "
                             f"{sorted(self._queues)}")
        if len(queue.items) >= queue.depth:
            raise AdmissionRejected(
                f"tenant {tenant!r} queue is full "
                f"({queue.depth} queued); retry with backoff",
                tenant=tenant, queue_depth=queue.depth)
        queue.items.append(item)

    def take(self) -> tuple[str, object] | None:
        """Dequeue from the next tenant by smooth WRR; None when empty."""
        active = [queue for queue in self._queues.values() if queue.items]
        if not active:
            return None
        total = sum(queue.weight for queue in active)
        best = None
        for queue in active:
            queue.priority += queue.weight
            if best is None or queue.priority > best.priority:
                best = queue
        best.priority -= total
        return best.name, best.items.popleft()

    def depth(self, tenant: str) -> int:
        return len(self._queues[tenant].items)

    def depths(self) -> dict[str, int]:
        """Queued requests per tenant (the queue-depth gauge source)."""
        return {name: len(queue.items)
                for name, queue in self._queues.items()}

    def backlog(self) -> int:
        """Total queued requests across every tenant."""
        return sum(len(queue.items) for queue in self._queues.values())

    def drain(self) -> list[tuple[str, object]]:
        """Remove and return everything still queued (shutdown path)."""
        drained: list[tuple[str, object]] = []
        while True:
            taken = self.take()
            if taken is None:
                return drained
            drained.append(taken)


class AdmissionController:
    """The scheduler plus the bounded in-flight execution window."""

    def __init__(self, max_inflight: int) -> None:
        if not isinstance(max_inflight, int) or max_inflight < 1:
            raise ValueError(
                f"max_inflight must be a positive integer, "
                f"got {max_inflight!r}")
        self.max_inflight = max_inflight
        self._scheduler = FairScheduler()
        self._condition = threading.Condition()
        self._inflight = 0
        self._dispatched = 0
        self._closed = False

    def register(self, tenant: str, weight: int = 1,
                 queue_depth: int = DEFAULT_QUEUE_DEPTH) -> None:
        with self._condition:
            self._scheduler.register(tenant, weight, queue_depth)

    def submit(self, tenant: str, item: object) -> None:
        """Enqueue or raise (:class:`AdmissionRejected`, ``ValueError``)."""
        with self._condition:
            if self._closed:
                raise RuntimeError("admission controller is closed")
            self._scheduler.offer(tenant, item)
            self._condition.notify()

    def acquire(self) -> tuple[str, object, int] | None:
        """Block for the next request and an execution slot.

        Returns ``(tenant, item, dispatch_sequence)`` — the sequence is
        assigned under the ordering lock, so it is the authoritative
        dispatch order for fairness auditing.  Returns ``None`` once the
        controller is closed and (when closing in drain mode) the
        backlog is empty.  Every successful acquire must be paired with
        one :meth:`release`.
        """
        with self._condition:
            while True:
                if self._inflight < self.max_inflight:
                    taken = self._scheduler.take()
                    if taken is not None:
                        tenant, item = taken
                        self._inflight += 1
                        self._dispatched += 1
                        return tenant, item, self._dispatched
                if self._closed:
                    return None
                self._condition.wait()

    def release(self) -> None:
        """Return an execution slot after a query finishes."""
        with self._condition:
            self._inflight -= 1
            self._condition.notify_all()

    def close(self, drain: bool = True) -> list[tuple[str, object]]:
        """Stop admitting; wake every waiter.

        With ``drain=True`` (default) workers keep acquiring until the
        backlog is empty; with ``drain=False`` the backlog is removed
        and returned so the caller can fail each pending request
        explicitly — queries are never silently dropped.
        """
        with self._condition:
            self._closed = True
            dropped = [] if drain else self._scheduler.drain()
            self._condition.notify_all()
            return dropped

    @property
    def inflight(self) -> int:
        with self._condition:
            return self._inflight

    @property
    def dispatched(self) -> int:
        """Total requests handed to workers so far."""
        with self._condition:
            return self._dispatched

    def depths(self) -> dict[str, int]:
        with self._condition:
            return self._scheduler.depths()

    def backlog(self) -> int:
        with self._condition:
            return self._scheduler.backlog()


def fair_shares(weights: dict[str, int],
                active: Iterable[str] | None = None) -> dict[str, float]:
    """Each tenant's fair dispatch share among ``active`` tenants.

    The reference for fairness gates: over a window where exactly the
    ``active`` tenants stay backlogged, smooth WRR serves tenant ``t``
    a ``weights[t] / sum(active weights)`` fraction of dispatches
    (within one dispatch per tenant).
    """
    names = list(weights if active is None else active)
    total = sum(weights[name] for name in names)
    if total <= 0:
        raise ValueError("no active weight")
    return {name: weights[name] / total for name in names}

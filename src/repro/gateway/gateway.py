"""The multi-tenant serving gateway in front of :class:`QueryService`.

:class:`QueryService` runs one query at a time per caller;
:class:`Gateway` turns it into a production front-end serving many
tenants concurrently under explicit resource arbitration:

* **admission control** — a bounded in-flight window with per-tenant
  bounded queues drained by weighted fair round-robin
  (:mod:`repro.gateway.admission`); overflow rejects with
  :class:`~repro.exceptions.AdmissionRejected`, never drops silently;
* **quotas & metering** — per-tenant token-bucket rate limits and
  prepaid credit accounts (:mod:`repro.gateway.quotas`), debited from
  each :class:`~repro.service.QueryOutcome`'s §7-costed trace and
  journaled in a :class:`~repro.cost.metering.Ledger`.  Quota-exhausted
  tenants are rejected at :meth:`Gateway.submit`, before a single
  planning cycle is spent on them;
* **observability** — every admission decision, queue depth, dispatch,
  query latency, fragment latency (via the runtime's metrics sink),
  breaker state and cache hit rate lands in a
  :class:`~repro.obs.metrics.MetricsRegistry`, scrapable as Prometheus
  text from :meth:`Gateway.metrics_text` (and ``python -m repro
  metrics`` on the CLI);
* **budgets & graceful degradation** — each query runs under a
  :class:`~repro.core.budget.QueryBudget` (the caller's request merged
  over the tenant's defaults) carried in a
  :class:`~repro.core.budget.CancellationToken` whose deadline starts
  at submission, so queue wait draws from it.  Admission consults a
  :class:`~repro.gateway.admission.LatencyPredictor` (per-SQL EWMAs,
  falling back to the per-tenant latency histogram) and sheds work
  predicted to blow its deadline or cost ceiling with
  :class:`~repro.exceptions.SheddedError` *before it is queued*;
  queued entries whose deadline passes before dispatch are settled at
  dequeue — including during a draining :meth:`Gateway.close` — without
  a single planning cycle.

A *tenant* is a billing/QoS identity: its configured ``user`` (the
authorization identity the policy knows) is what
:meth:`QueryService.execute` enforces.  Several tenants may share one
user while keeping separate queues, quotas and ledgers.

Execution model: ``max_inflight`` daemon workers block on the
admission controller, each executing one admitted query at a time
through the shared service; :meth:`Gateway.submit` returns a
:class:`concurrent.futures.Future` resolving to the
:class:`~repro.service.QueryOutcome` (or raising the query's error).
Time is injected via ``clock`` for deterministic queue-wait
accounting; execution itself is as concurrent as the service allows.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.budget import CancellationToken, QueryBudget
from repro.cost.metering import CreditAccount, Ledger
from repro.exceptions import (
    AdmissionRejected,
    DeadlineExceededError,
    GatewayError,
    QueryCancelledError,
    QuotaExceeded,
    SheddedError,
)
from repro.gateway.admission import (
    DEFAULT_QUEUE_DEPTH,
    AdmissionController,
    LatencyPredictor,
)
from repro.gateway.quotas import TenantQuota
from repro.obs.metrics import DEFAULT_FRACTION_BUCKETS, MetricsRegistry
from repro.service import QueryOutcome, QueryService

#: Fragment executions are mostly sub-millisecond cache hits; queue
#: waits under saturation reach seconds.  One bucket ladder covers both.
_LATENCY_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: Breaker states as gauge values.
_BREAKER_STATES = {"closed": 0.0, "half_open": 1.0, "open": 2.0}


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's admission, quota, and identity configuration.

    Attributes
    ----------
    name:
        The tenant identity (metrics label, ledger key).
    weight:
        Fair-queueing weight: under saturation the tenant receives a
        ``weight / Σ active weights`` share of dispatches.
    queue_depth:
        Queries queued beyond the in-flight window before
        :class:`AdmissionRejected`.
    rate_per_second / burst:
        Token-bucket rate limit (``None`` = unlimited rate).
    credits_usd:
        Prepaid credit (``None`` = unmetered); spend is debited from
        each outcome's costed trace.
    deadline_seconds / cost_ceiling_usd:
        Default per-query budget (``None`` = unbounded dimension).  A
        per-query budget passed to :meth:`Gateway.submit` overrides
        these field by field; the merged budget becomes the query's
        :class:`~repro.core.budget.CancellationToken`, counting from
        submission.
    user:
        The authorization identity queries run as (defaults to the
        service's constructing user).
    """

    name: str
    weight: int = 1
    queue_depth: int = DEFAULT_QUEUE_DEPTH
    rate_per_second: float | None = None
    burst: float = 1.0
    credits_usd: float | None = None
    deadline_seconds: float | None = None
    cost_ceiling_usd: float | None = None
    user: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if not isinstance(self.weight, int) or self.weight < 1:
            raise ValueError(
                f"weight must be a positive integer, got {self.weight!r}")
        if not isinstance(self.queue_depth, int) or self.queue_depth < 1:
            raise ValueError(
                f"queue_depth must be a positive integer, "
                f"got {self.queue_depth!r}")
        # Same > 0 or None validation the budget itself applies.
        QueryBudget(deadline_seconds=self.deadline_seconds,
                    cost_ceiling_usd=self.cost_ceiling_usd)


class _Request:
    """One admitted query waiting for (or in) execution."""

    __slots__ = ("tenant", "sql", "user", "future", "enqueued_at",
                 "dispatch_sequence", "token")

    def __init__(self, tenant: str, sql: str, user: str,
                 enqueued_at: float,
                 token: CancellationToken | None = None) -> None:
        self.tenant = tenant
        self.sql = sql
        self.user = user
        self.future: Future = Future()
        self.enqueued_at = enqueued_at
        self.dispatch_sequence: int | None = None
        self.token = token


class _FragmentSink:
    """Adapter: runtime fragment completions → a labelled histogram."""

    def __init__(self, histogram) -> None:
        self._histogram = histogram

    def observe_fragment(self, subject: str, seconds: float) -> None:
        self._histogram.labels(subject).observe(seconds)


class Gateway:
    """Multi-tenant admission/quota/metering front-end over one service."""

    def __init__(self, service: QueryService,
                 tenants: Iterable[TenantConfig], *,
                 max_inflight: int = 4,
                 clock=time.monotonic,
                 registry: MetricsRegistry | None = None,
                 ledger: Ledger | None = None,
                 shed_quantile: float = 0.9,
                 shed_safety: float = 1.0) -> None:
        tenants = list(tenants)
        if not tenants:
            raise ValueError("a gateway needs at least one tenant")
        names = [config.name for config in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")
        if not 0.0 <= shed_quantile <= 1.0:
            raise ValueError(
                f"shed_quantile must be in [0, 1], got {shed_quantile!r}")
        if shed_safety <= 0:
            raise ValueError(
                f"shed_safety must be positive, got {shed_safety!r}")
        self.service = service
        self.clock = clock
        self.shed_quantile = shed_quantile
        self.shed_safety = shed_safety
        self.tenants: Mapping[str, TenantConfig] = {
            config.name: config for config in tenants}
        self.ledger = ledger if ledger is not None else Ledger()
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self._controller = AdmissionController(max_inflight)
        self._max_inflight = max_inflight
        self._predictor = LatencyPredictor()
        self._quotas: dict[str, TenantQuota] = {}
        for config in tenants:
            self._controller.register(config.name, config.weight,
                                      config.queue_depth)
            self._quotas[config.name] = TenantQuota(
                config.name, rate_per_second=config.rate_per_second,
                burst=config.burst, credits_usd=config.credits_usd,
                deadline_seconds=config.deadline_seconds,
                cost_ceiling_usd=config.cost_ceiling_usd,
                clock=clock)
        self._register_metrics()
        self.service.attach_metrics(
            _FragmentSink(self._fragment_latency))
        self._closed = False
        self._close_lock = threading.Lock()
        self._workers = [
            threading.Thread(target=self._worker, daemon=True,
                             name=f"gateway-worker-{index}")
            for index in range(max_inflight)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def _register_metrics(self) -> None:
        registry = self.registry
        self._submitted = registry.counter(
            "repro_gateway_queries_submitted_total",
            "Queries offered to the gateway, admitted or not.",
            labelnames=("tenant",))
        self._completed = registry.counter(
            "repro_gateway_queries_completed_total",
            "Queries executed to a result.", labelnames=("tenant",))
        self._failed = registry.counter(
            "repro_gateway_queries_failed_total",
            "Admitted queries whose execution raised.",
            labelnames=("tenant",))
        self._rejected = registry.counter(
            "repro_gateway_queries_rejected_total",
            "Queries rejected before planning, by reason "
            "(queue_full, rate, credits).",
            labelnames=("tenant", "reason"))
        self._queue_depth = registry.gauge(
            "repro_gateway_queue_depth",
            "Queries queued per tenant right now.",
            labelnames=("tenant",))
        self._inflight = registry.gauge(
            "repro_gateway_inflight",
            "Admitted queries currently executing.")
        self._queue_wait = registry.histogram(
            "repro_gateway_queue_wait_seconds",
            "Admission-to-dispatch wait.", buckets=_LATENCY_BUCKETS,
            labelnames=("tenant",))
        self._query_seconds = registry.histogram(
            "repro_gateway_query_seconds",
            "End-to-end execution time of admitted queries.",
            buckets=_LATENCY_BUCKETS, labelnames=("tenant",))
        self._credits_spent = registry.counter(
            "repro_gateway_credits_spent_usd_total",
            "Metered spend per tenant (sum of costed traces).",
            labelnames=("tenant",))
        self._deadline_exceeded = registry.counter(
            "repro_gateway_deadline_exceeded_total",
            "Queries whose end-to-end deadline expired (at dequeue or "
            "mid-execution).", labelnames=("tenant",))
        self._cancelled = registry.counter(
            "repro_gateway_cancelled_total",
            "Queries cancelled by their client via the token.",
            labelnames=("tenant",))
        self._shed_predicted = registry.counter(
            "repro_gateway_shed_predicted_total",
            "Queries shed at submit because the predictor expected them "
            "to blow their budget (predicted_deadline, predicted_cost).",
            labelnames=("tenant", "reason"))
        self._budget_fraction = registry.histogram(
            "repro_gateway_budget_remaining_fraction",
            "Fraction of the deadline budget left when a budgeted query "
            "delivered its result.", buckets=DEFAULT_FRACTION_BUCKETS,
            labelnames=("tenant",))
        self._fragment_latency = registry.histogram(
            "repro_fragment_latency_seconds",
            "Per-subject fragment execution time (runtime sink).",
            buckets=_LATENCY_BUCKETS, labelnames=("subject",))
        self._breaker_state = registry.gauge(
            "repro_breaker_state",
            "Circuit breaker per subject (0 closed, 1 half-open, "
            "2 open, 3 dead).", labelnames=("subject",))
        self._breaker_trips = registry.counter(
            "repro_breaker_trips_total",
            "Circuit breaker trips per subject.",
            labelnames=("subject",))
        self._cache_hits = registry.counter(
            "repro_cache_hits_total",
            "Cache hits by cache (assignment, executor).",
            labelnames=("cache",))
        self._cache_misses = registry.counter(
            "repro_cache_misses_total",
            "Cache misses by cache (assignment, executor).",
            labelnames=("cache",))
        self._cache_entries = registry.gauge(
            "repro_cache_entries",
            "Resident entries by cache (plans, fragments, assignment).",
            labelnames=("cache",))
        registry.register_collector(self._collect)

    def _collect(self) -> None:
        """Mirror service/runtime snapshots into the registry (scrape)."""
        for tenant, depth in self._controller.depths().items():
            self._queue_depth.labels(tenant).set(depth)
        for subject, record in self.service.health_info().items():
            state = 3.0 if record["dead"] \
                else _BREAKER_STATES[record["state"]]
            self._breaker_state.labels(subject).set(state)
            self._breaker_trips.labels(subject).set_total(
                record["breaker_trips"])
        info = self.service.cache_info()
        assignment = info["assignment"]
        self._cache_hits.labels("assignment").set_total(
            assignment["hits"])
        self._cache_misses.labels("assignment").set_total(
            assignment["misses"])
        self._cache_hits.labels("executor").set_total(
            info["executor_hits"])
        self._cache_misses.labels("executor").set_total(
            info["executor_misses"])
        self._cache_entries.labels("plans").set(info["plans"])
        self._cache_entries.labels("assignment").set(assignment["size"])
        self._cache_entries.labels("fragments").set(
            info["fragment_entries"])

    def metrics_text(self) -> str:
        """The gateway's metrics in Prometheus text exposition format."""
        return self.registry.render()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, tenant: str, sql: str, *,
               budget: QueryBudget | None = None,
               token: CancellationToken | None = None) -> Future:
        """Offer one query; returns a Future of its ``QueryOutcome``.

        ``budget`` is merged over the tenant's defaults
        (:meth:`~repro.gateway.quotas.TenantQuota.budget_for`) and a
        :class:`~repro.core.budget.CancellationToken` is minted for the
        result — its deadline counts from *now*, so queue wait draws
        from it.  Pass ``token`` instead to keep a countdown that
        started earlier, or to retain a ``cancel()`` handle (also
        available afterwards via ``Future.cancellation_token``, set on
        the returned future whenever the query runs budgeted).

        Raises — all *before* any planning work is spent —
        ``ValueError`` for an unknown tenant,
        :class:`~repro.exceptions.QuotaExceeded` when the tenant is out
        of credit or rate tokens,
        :class:`~repro.exceptions.SheddedError` when the latency/cost
        predictor concludes the query cannot meet its budget, and
        :class:`~repro.exceptions.AdmissionRejected` when its queue is
        full.
        """
        config = self.tenants.get(tenant)
        if config is None:
            raise ValueError(f"unknown tenant {tenant!r}; configured: "
                             f"{sorted(self.tenants)}")
        if self._closed:
            raise GatewayError("gateway is closed")
        self._submitted.labels(tenant).inc()
        quota = self._quotas[tenant]
        try:
            quota.check(self.ledger)
        except QuotaExceeded as refusal:
            self._rejected.labels(tenant, refusal.reason).inc()
            raise
        if token is None:
            merged = quota.budget_for(budget)
            if merged is not None:
                token = CancellationToken(merged, clock=self.clock)
        self._shed_if_predicted_over_budget(tenant, sql, token)
        request = _Request(tenant, sql, config.user or self.service.user,
                           self.clock(), token=token)
        try:
            self._controller.submit(tenant, request)
        except AdmissionRejected:
            self._rejected.labels(tenant, "queue_full").inc()
            raise
        # Expose the cancel handle on the future so callers who passed
        # only a budget can still abort mid-flight.
        request.future.cancellation_token = token
        return request.future

    def _shed_if_predicted_over_budget(
            self, tenant: str, sql: str,
            token: CancellationToken | None) -> None:
        """Refuse work the predictor expects to blow its budget.

        Deadline: the predicted run time (per-SQL EWMA, else the
        tenant's ``shed_quantile`` query-latency quantile) is scaled by
        the standing backlog relative to the in-flight window and by
        ``shed_safety``; if that exceeds the token's remaining budget
        the query is shed with a retry-after equal to the queue-wait
        component (by then the backlog estimate has drained).  Cost:
        the per-SQL cost EWMA against the ceiling, no retry-after —
        waiting cannot make a plan cheaper.  No signal → admit: cold
        starts must pass, and a wrong admit still dies cheaply at the
        dequeue/planning checkpoints.
        """
        if token is None:
            return
        remaining = token.remaining_seconds()
        if remaining is not None:
            run_seconds = self._predictor.predict_seconds(sql)
            if run_seconds is None:
                quantile = self._query_seconds.labels(tenant).quantile(
                    self.shed_quantile)
                if quantile > 0.0 and quantile != float("inf"):
                    run_seconds = quantile
            if run_seconds is not None:
                backlog_factor = 1.0 + (self._controller.backlog()
                                        / self._max_inflight)
                predicted = run_seconds * backlog_factor \
                    * self.shed_safety
                if predicted > remaining:
                    self._shed_predicted.labels(
                        tenant, "predicted_deadline").inc()
                    raise SheddedError(
                        f"tenant {tenant!r}: predicted "
                        f"{predicted:.3f}s exceeds the {remaining:.3f}s "
                        f"remaining deadline budget; shed before "
                        f"queueing", tenant=tenant,
                        reason="predicted_deadline",
                        predicted_seconds=predicted,
                        remaining_seconds=remaining,
                        retry_after_seconds=max(
                            0.0, predicted - run_seconds))
        ceiling = token.budget.cost_ceiling_usd
        if ceiling is not None:
            cost = self._predictor.predict_cost(sql)
            if cost is not None and cost > ceiling:
                self._shed_predicted.labels(
                    tenant, "predicted_cost").inc()
                raise SheddedError(
                    f"tenant {tenant!r}: predicted cost ${cost:.6f} "
                    f"exceeds the ${ceiling:.6f} ceiling; shed before "
                    f"queueing", tenant=tenant, reason="predicted_cost",
                    predicted_seconds=None, remaining_seconds=None,
                    retry_after_seconds=None)

    def execute(self, tenant: str, sql: str, *,
                budget: QueryBudget | None = None,
                token: CancellationToken | None = None) -> QueryOutcome:
        """Submit and block for the outcome (convenience wrapper)."""
        return self.submit(tenant, sql, budget=budget,
                           token=token).result()

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            acquired = self._controller.acquire()
            if acquired is None:
                return
            tenant, request, dispatch_sequence = acquired
            request.dispatch_sequence = dispatch_sequence
            self._queue_wait.labels(tenant).observe(
                self.clock() - request.enqueued_at)
            self._inflight.inc()
            try:
                self._execute_request(tenant, request)
            finally:
                self._inflight.dec()
                self._controller.release()

    def _execute_request(self, tenant: str, request: _Request) -> None:
        quota = self._quotas[tenant]
        started = self.clock()
        token = request.token
        if token is not None:
            # Shed-at-dequeue: an entry that died in the queue (client
            # cancelled, or its deadline lapsed while it waited) is
            # settled here without spending a byte of planning.  This
            # is also what lets close(drain=True) flush a backlog of
            # expired work instead of executing it.
            try:
                token.check("gateway:dequeue")
            except QueryCancelledError as error:
                self._cancelled.labels(tenant).inc()
                self.ledger.record(
                    tenant, user=request.user, sql=request.sql,
                    cost_usd=0.0, wall_seconds=self.clock() - started,
                    status="cancelled",
                    dispatch_sequence=request.dispatch_sequence)
                request.future.set_exception(error)
                return
            except DeadlineExceededError as error:
                self._deadline_exceeded.labels(tenant).inc()
                self.ledger.record(
                    tenant, user=request.user, sql=request.sql,
                    cost_usd=0.0, wall_seconds=self.clock() - started,
                    status="shed",
                    dispatch_sequence=request.dispatch_sequence)
                request.future.set_exception(error)
                return
        try:
            if token is None:
                outcome = self.service.execute(request.sql,
                                               user=request.user)
            else:
                outcome = self.service.execute(request.sql,
                                               user=request.user,
                                               token=token)
        except BaseException as error:  # noqa: BLE001 — relayed, not hidden
            if isinstance(error, QueryCancelledError):
                self._cancelled.labels(tenant).inc()
                status = "cancelled"
            elif isinstance(error, DeadlineExceededError):
                self._deadline_exceeded.labels(tenant).inc()
                status = "deadline"
            else:
                self._failed.labels(tenant).inc()
                status = "failed"
            self.ledger.record(
                tenant, user=request.user, sql=request.sql,
                cost_usd=0.0, wall_seconds=self.clock() - started,
                status=status,
                dispatch_sequence=request.dispatch_sequence)
            request.future.set_exception(error)
            return
        quota.settle(outcome.cost_usd)
        self._credits_spent.labels(tenant).inc(outcome.cost_usd)
        self._completed.labels(tenant).inc()
        self._query_seconds.labels(tenant).observe(outcome.wall_seconds)
        self._predictor.observe(request.sql, outcome.wall_seconds,
                                outcome.cost_usd)
        if token is not None:
            fraction = token.remaining_fraction()
            if fraction is not None:
                self._budget_fraction.labels(tenant).observe(fraction)
        self.ledger.record(
            tenant, user=request.user, sql=request.sql,
            cost_usd=outcome.cost_usd,
            wall_seconds=outcome.wall_seconds, status="completed",
            dispatch_sequence=request.dispatch_sequence)
        request.future.set_result(outcome)

    # ------------------------------------------------------------------
    # Introspection & lifecycle
    # ------------------------------------------------------------------
    def account(self, tenant: str) -> CreditAccount:
        """The tenant's live credit account (deposit/balance access)."""
        return self._quotas[tenant].account

    def queue_depths(self) -> dict[str, int]:
        """Queued queries per tenant right now."""
        return self._controller.depths()

    def dispatched(self) -> int:
        """Total queries handed to workers so far."""
        return self._controller.dispatched

    def close(self, drain: bool = True) -> None:
        """Stop the gateway.

        ``drain=True`` (default) finishes every queued query first;
        ``drain=False`` fails pending queries with
        :class:`~repro.exceptions.GatewayError` — either way nothing is
        silently dropped.  Idempotent; blocks until workers exit.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            dropped = self._controller.close(drain=drain)
        for _, request in dropped:
            request.future.set_exception(
                GatewayError("gateway closed before execution"))
        for worker in self._workers:
            worker.join()
        self.service.attach_metrics(None)

    def __enter__(self) -> "Gateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

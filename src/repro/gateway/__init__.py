"""Multi-tenant serving gateway: admission, quotas, metering, metrics.

The production front-end the ROADMAP's north star asks for: many
tenants share one :class:`~repro.service.QueryService` under bounded
concurrency, weighted fair queueing, token-bucket rate limits, credit
metering priced from the §7 cost model, and a Prometheus-style metrics
registry.  See :mod:`repro.gateway.gateway` for the execution model and
``docs/architecture.md`` for where the gateway sits in the stack.
"""

from repro.exceptions import (
    AdmissionRejected,
    GatewayError,
    QuotaExceeded,
    SheddedError,
)
from repro.gateway.admission import (
    DEFAULT_PREDICTOR_ALPHA,
    DEFAULT_PREDICTOR_SIZE,
    DEFAULT_QUEUE_DEPTH,
    AdmissionController,
    FairScheduler,
    LatencyPredictor,
    fair_shares,
)
from repro.gateway.gateway import Gateway, TenantConfig
from repro.gateway.quotas import TenantQuota, TokenBucket

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "DEFAULT_PREDICTOR_ALPHA",
    "DEFAULT_PREDICTOR_SIZE",
    "DEFAULT_QUEUE_DEPTH",
    "FairScheduler",
    "Gateway",
    "GatewayError",
    "LatencyPredictor",
    "QuotaExceeded",
    "SheddedError",
    "TenantConfig",
    "TenantQuota",
    "TokenBucket",
    "fair_shares",
]

"""Shared process-pool layer for the CPU-bound data plane.

The GIL caps the runtime's thread pool at one core for CPU-bound work,
so the hot kernels — whole-column Paillier CRT decryption (~650 µs per
value, the dominant crypto cost), columnar Encrypt/Decrypt, and
hash-join probes — fan out across *worker processes* instead.  This
package owns the machinery; the kernels themselves stay in the modules
that define their sequential reference paths.

Contract
--------
* **Chunking.**  :meth:`WorkerPool.map_chunks` splits a column (or a
  probe side) into contiguous chunks, submits ``task(payload, chunk)``
  per chunk, and concatenates the per-chunk result lists.  ``payload``
  is the chunk-invariant context (serialized key material, a pickled
  join build side) shipped with every chunk; workers memoize its
  deserialized form keyed by the payload bytes
  (:mod:`repro.parallel.kernels`), so repeated columns under the same
  key pay transport, not rehydration.
* **Ordering.**  Chunks are contiguous slices in input order and
  results are reassembled in submission order, so the concatenated
  output is element-for-element identical to the sequential kernel —
  including output *row order* for the parallel hash-join probe.
* **Fallback.**  With ``workers=0``, or when the input is smaller than
  ``min_parallel_items``, ``map_chunks`` runs the same task function
  inline in the calling process — no processes are spawned and the
  sequential reference behaviour is reproduced exactly.  Callers may
  also pre-check :meth:`WorkerPool.should_parallelize` to skip building
  the payload at all.
* **Spawn safety.**  Workers start via the ``spawn`` context (no
  inherited fork state); everything they need arrives pickled.  The
  crypto objects define ``__getstate__`` hooks that drop per-process
  state (cipher memos, obfuscator pools, locks) and rebuild it lazily
  on the other side.
* **Errors.**  An exception raised inside a worker (a tampered token's
  :class:`~repro.exceptions.CryptoError`, an unhashable join key's
  :class:`~repro.exceptions.ExecutionError`) propagates to the caller
  through the earliest failing chunk, exactly as the sequential loop
  raises it.
* **Sharing.**  :meth:`ExecutionSettings.pool` hands out one bounded
  process pool per ``(workers, min_parallel_items)`` configuration, so
  the runtime's per-subject fragments and each fragment's intra-column
  chunks draw from the same worker budget instead of multiplying pools.

Known cost: each chunk re-ships its payload (for joins, the pickled
build side), so parallel probing pays build-side transport per chunk.
The ``min_parallel_items`` threshold keeps small inputs inline where
that overhead would dominate.
"""

from repro.parallel.pool import (
    JOIN_STRATEGIES,
    ExecutionSettings,
    WorkerPool,
    shared_pool,
)

__all__ = [
    "JOIN_STRATEGIES",
    "ExecutionSettings",
    "WorkerPool",
    "shared_pool",
]

"""Worker-side task functions and the per-process rehydration registry.

Every function here is a top-level callable (spawn workers resolve
tasks by qualified name) taking ``(payload, chunk)`` and returning a
list, per the :mod:`repro.parallel` contract.  Payloads carry the
chunk-invariant context as pickle blobs; :func:`_rehydrate` memoizes the
deserialized object keyed by the blob bytes, so a column's second chunk
— and every later column under the same key — skips deserialization and
reuses the worker's warmed cipher state (deterministic/OPE memos,
obfuscator pools, HMAC key schedules).

The kernels delegate to the same batch methods the sequential paths
use (``decrypt_values``, ``encrypt_many``,
:func:`repro.engine.executor.probe_partition` …), so parallel output is
the sequential output, chunk by chunk.  Values cross the process
boundary in *raw* form — ciphertext integers, token bytes, plain rows —
and the callers rebuild :class:`~repro.engine.values.EncryptedValue`
wrappers parent-side, keeping transport minimal.
"""

from __future__ import annotations

import pickle

from repro.core.requirements import EncryptionScheme

#: Bound on memoized payloads per worker; a full registry is dropped
#: wholesale (key material counts are small; join payloads churn).
_REGISTRY_MAX = 64

_materials: dict[bytes, object] = {}

#: Pickled-then-compiled join build payloads (buckets, signatures,
#: compiled residual checks …), keyed by the payload blob.
_probe_states: dict[bytes, tuple] = {}


def dumps(obj: object) -> bytes:
    """Serialize a payload for worker transport."""
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def _rehydrate(blob: bytes) -> object:
    obj = _materials.get(blob)
    if obj is None:
        if len(_materials) >= _REGISTRY_MAX:
            _materials.clear()
        obj = pickle.loads(blob)
        _materials[blob] = obj
    return obj


# -- column crypto ------------------------------------------------------
def paillier_decrypt_chunk(blob: bytes, values: list[int]) -> list:
    """CRT-decrypt raw ciphertext integers under a pickled private key.

    The caller performed the key-membership check before stripping the
    ciphertexts to ints (raw ints carry no key to check against).
    """
    private = _rehydrate(blob)
    return private.decrypt_values(values)


def column_encrypt_chunk(blob: bytes, values: list) -> list:
    """Encrypt one chunk of plaintexts under pickled ``KeyMaterial``.

    Returns raw tokens: ciphertext ints for Paillier, token bytes for
    the symmetric schemes, ``(ope_token, recovery_bytes)`` pairs for
    OPE.  Scheme validation (numeric-only Paillier, missing key parts)
    happened parent-side before submission.
    """
    material = _rehydrate(blob)
    scheme = material.scheme
    if scheme is EncryptionScheme.PAILLIER:
        return material.paillier_public.encrypt_values(values)
    if scheme is EncryptionScheme.DETERMINISTIC:
        return material.deterministic_cipher().encrypt_many(values)
    if scheme is EncryptionScheme.RANDOMIZED:
        return material.randomized_cipher().encrypt_many(values)
    if scheme is EncryptionScheme.OPE:
        tokens = material.ope_cipher().encrypt_many(values)
        recoveries = material.recovery_cipher().encrypt_many(values)
        return list(zip(tokens, recoveries))
    raise ValueError(f"unsupported scheme {scheme}")


def column_decrypt_chunk(payload: tuple[bytes, str], tokens: list) -> list:
    """Decrypt one chunk of raw tokens; ``payload`` is (material, scheme).

    A tampered or wrong-key token raises
    :class:`~repro.exceptions.CryptoError` here and propagates to the
    caller through the chunk's future, like the sequential loop raises.
    """
    blob, scheme_name = payload
    material = _rehydrate(blob)
    scheme = EncryptionScheme[scheme_name]
    if scheme is EncryptionScheme.PAILLIER:
        return material.paillier_private.decrypt_values(tokens)
    if scheme is EncryptionScheme.DETERMINISTIC:
        return material.deterministic_cipher().decrypt_many(tokens)
    if scheme is EncryptionScheme.RANDOMIZED:
        return material.randomized_cipher().decrypt_many(tokens)
    if scheme is EncryptionScheme.OPE:
        # OPE plaintexts travel in the recovery ciphertext; the tokens
        # here are those recovery bytes.
        return material.recovery_cipher().decrypt_many(tokens)
    raise ValueError(f"unsupported scheme {scheme}")


# -- join probing -------------------------------------------------------
def join_probe_chunk(blob: bytes, rows: list[tuple]) -> list[tuple]:
    """Probe one contiguous slice of the probe side against the build.

    ``blob`` pickles ``(buckets, build_sigs, probe_positions,
    equalities, residual_specs, build_is_left)``; residual comparators
    are compiled once per payload worker-side (closures don't pickle —
    the spec ships the :class:`~repro.core.predicates.ComparisonOp`).
    """
    state = _probe_states.get(blob)
    if state is None:
        from repro.engine.expressions import compile_comparison

        (buckets, build_sigs, probe_positions, equalities, specs,
         build_is_left) = pickle.loads(blob)
        checks = [
            (left_sel, compile_comparison(op), right_sel)
            for left_sel, op, right_sel in specs
        ]
        state = (buckets, build_sigs, probe_positions, equalities, checks,
                 build_is_left)
        if len(_probe_states) >= _REGISTRY_MAX:
            _probe_states.clear()
        _probe_states[blob] = state
    from repro.engine.executor import probe_partition

    (buckets, build_sigs, probe_positions, equalities, checks,
     build_is_left) = state
    return probe_partition(buckets, build_sigs, rows, probe_positions,
                           equalities, checks, build_is_left)

"""The bounded process pool and the knobs that size it.

See the package docstring (:mod:`repro.parallel`) for the
chunking/ordering/fallback contract.  This module deliberately imports
nothing from the crypto or engine layers, so every one of them can
depend on it without cycles.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.budget import active_token

#: Join strategies the executor accepts, in preference order.
JOIN_STRATEGIES = ("hash", "parallel-hash", "nested-loop")

#: Below this many items a column runs inline: process transport costs
#: more than it saves on small inputs (see the package docstring).
DEFAULT_MIN_PARALLEL_ITEMS = 256

#: Contiguous chunks submitted per worker.  More than one evens out
#: skew between chunks (a worker that finishes early picks up another)
#: without shrinking chunks to where per-task overhead dominates.
_CHUNKS_PER_WORKER = 2


class WorkerPool:
    """A lazily started, spawn-context process pool with chunked map.

    Parameters
    ----------
    workers:
        Worker process count.  ``0`` disables the pool entirely:
        :meth:`map_chunks` always runs inline and no process is ever
        spawned — the single-core reference behaviour.
    min_parallel_items:
        Inputs smaller than this run inline even with workers available.

    The underlying :class:`~concurrent.futures.ProcessPoolExecutor` is
    created on the first parallel submission (constructing a pool is
    free until it is actually needed) and is safe to share across
    threads — the runtime's fragment scheduler submits column chunks
    from several fragment threads into one pool.
    """

    def __init__(self, workers: int,
                 min_parallel_items: int = DEFAULT_MIN_PARALLEL_ITEMS,
                 ) -> None:
        if workers < 0:
            raise ValueError(
                f"workers must be a non-negative integer, got {workers!r}")
        self.workers = workers
        self.min_parallel_items = max(1, min_parallel_items)
        self._executor: ProcessPoolExecutor | None = None
        self._guard = threading.Lock()

    def should_parallelize(self, count: int) -> bool:
        """Whether an input of ``count`` items goes to the workers."""
        return self.workers > 0 and count >= self.min_parallel_items

    def map_chunks(self, task: Callable[[object, list], list],
                   payload: object, items: Sequence) -> list:
        """Run ``task(payload, chunk)`` over contiguous chunks of ``items``.

        Results are concatenated in submission order, so the output is
        identical to ``task(payload, list(items))`` — which is exactly
        what runs (inline, in this process) when the pool is disabled or
        the input is below the size threshold.

        Cancellation: when the submitting thread carries a scoped
        :class:`~repro.core.budget.CancellationToken` (see
        ``token_scope``), it is checked before starting and between
        collecting each chunk's result.  A chunk already running in a
        worker completes (workers are oblivious to tokens — cooperative,
        never preemptive), but no further chunk is *awaited* after an
        abort: pending futures are cancelled and the abort unwinds
        within one chunk, leaving the pool reusable.
        """
        token = active_token()
        if token is not None:
            token.check("pool:map")
        items = items if isinstance(items, list) else list(items)
        if not self.should_parallelize(len(items)):
            return task(payload, items)
        chunk_count = min(self.workers * _CHUNKS_PER_WORKER, len(items))
        size = -(-len(items) // chunk_count)  # ceil division
        chunks = [items[i:i + size] for i in range(0, len(items), size)]
        if len(chunks) == 1:
            return task(payload, items)
        executor = self._ensure_executor()
        futures = [executor.submit(task, payload, chunk) for chunk in chunks]
        out: list = []
        for index, future in enumerate(futures):
            if token is not None:
                try:
                    token.check(f"pool:chunk {index}/{len(futures)}")
                except Exception:
                    for pending in futures[index:]:
                        pending.cancel()
                    raise
            out.extend(future.result())
        return out

    def _ensure_executor(self) -> ProcessPoolExecutor:
        executor = self._executor
        if executor is None:
            with self._guard:
                executor = self._executor
                if executor is None:
                    executor = ProcessPoolExecutor(
                        max_workers=self.workers,
                        mp_context=multiprocessing.get_context("spawn"),
                    )
                    self._executor = executor
        return executor

    def close(self) -> None:
        """Shut the worker processes down (no-op if never started)."""
        with self._guard:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)


#: One pool per configuration, shared by every settings object that
#: names it — fragments and intra-fragment chunks draw from the same
#: bounded worker budget.  Shared pools live for the process; nothing
#: closes them (worker processes idle between uses).
_SHARED_POOLS: dict[tuple[int, int], WorkerPool] = {}
_SHARED_GUARD = threading.Lock()


def shared_pool(workers: int,
                min_parallel_items: int = DEFAULT_MIN_PARALLEL_ITEMS,
                ) -> WorkerPool | None:
    """The process-wide :class:`WorkerPool` for this configuration.

    ``workers=0`` returns ``None`` — callers treat a missing pool as
    "run the sequential path", so zero workers reproduces today's
    single-core behaviour exactly.
    """
    if workers <= 0:
        return None
    key = (workers, min_parallel_items)
    with _SHARED_GUARD:
        pool = _SHARED_POOLS.get(key)
        if pool is None:
            pool = WorkerPool(workers, min_parallel_items)
            _SHARED_POOLS[key] = pool
        return pool


@dataclass(frozen=True)
class ExecutionSettings:
    """The data-plane parallelism knob, wired service → runtime → executor.

    ``workers=0`` (the default) keeps every path inline and
    single-core; a positive count fans column crypto and
    ``parallel-hash`` probes across that many worker processes, shared
    across all fragments via :func:`shared_pool`.
    """

    workers: int = 0
    join_strategy: str = "hash"
    min_parallel_items: int = DEFAULT_MIN_PARALLEL_ITEMS

    def __post_init__(self) -> None:
        if (not isinstance(self.workers, int)
                or isinstance(self.workers, bool) or self.workers < 0):
            raise ValueError(
                f"workers must be a non-negative integer, "
                f"got {self.workers!r}")
        if self.join_strategy not in JOIN_STRATEGIES:
            raise ValueError(
                f"unknown join strategy {self.join_strategy!r}; "
                f"expected one of: {', '.join(JOIN_STRATEGIES)}")
        if not isinstance(self.min_parallel_items, int) \
                or self.min_parallel_items < 1:
            raise ValueError(
                f"min_parallel_items must be a positive integer, "
                f"got {self.min_parallel_items!r}")

    def pool(self) -> WorkerPool | None:
        """The shared pool for these settings (``None`` when inline)."""
        return shared_pool(self.workers, self.min_parallel_items)

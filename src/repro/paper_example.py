"""The paper's running example (Sections 1–6, Figures 1–8).

Two data authorities — a hospital ``H`` storing ``Hosp(S, B, D, T)`` and
an insurance company ``I`` storing ``Ins(C, P)`` — a user ``U``, and three
cloud providers ``X``, ``Y``, ``Z``.  The query, on behalf of ``U``::

    SELECT T, AVG(P)
    FROM Hosp JOIN Ins ON S = C
    WHERE D = 'stroke'
    GROUP BY T
    HAVING AVG(P) > 100

This module builds the schema, the authorizations of Figure 1(b)/4, the
query plan of Figure 1(a), and the two assignments of Figures 7(a) and
7(b), so that tests, benchmarks, and examples can all validate against the
paper's exact artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.authorization import (
    ANY,
    Authorization,
    Policy,
    Subject,
    SubjectKind,
)
from repro.core.operators import (
    Aggregate,
    AggregateFunction,
    BaseRelationNode,
    GroupBy,
    Join,
    PlanNode,
    Selection,
)
from repro.core.plan import QueryPlan
from repro.core.predicates import (
    AttributeValuePredicate,
    ComparisonOp,
    equals,
)
from repro.core.schema import (
    AttributeSpec,
    DECIMAL,
    INTEGER,
    Relation,
    Schema,
    VARCHAR,
)


@dataclass
class RunningExample:
    """All artifacts of the paper's running example, ready to use."""

    schema: Schema
    policy: Policy
    subjects: tuple[Subject, ...]
    plan: QueryPlan
    user: Subject
    # Named nodes of the plan in Figure 1(a), bottom-up (the projection
    # π[S,D,T] is folded into the Hosp leaf, as the paper draws it):
    hosp_leaf: PlanNode
    ins_leaf: PlanNode
    selection: PlanNode
    join: PlanNode
    group_by: PlanNode
    having: PlanNode

    @property
    def subject_names(self) -> tuple[str, ...]:
        """Names of all subjects, user first."""
        return tuple(s.name for s in self.subjects)

    def assignment_7a(self) -> dict[PlanNode, str]:
        """The operation assignment of Figure 7(a).

        σ(D='stroke') → H, ⋈(S=C) → X, γ(T, avg(P)) → X,
        σ(avg(P)>100) → Y.
        """
        return {
            self.selection: "H",
            self.join: "X",
            self.group_by: "X",
            self.having: "Y",
        }

    def assignment_7b(self) -> dict[PlanNode, str]:
        """The operation assignment of Figure 7(b).

        σ(D='stroke') → H, ⋈(S=C) → Z, γ(T, avg(P)) → Z,
        σ(avg(P)>100) → Y.
        """
        return {
            self.selection: "H",
            self.join: "Z",
            self.group_by: "Z",
            self.having: "Y",
        }

    @property
    def owners(self) -> dict[str, str]:
        """Relation name → owning data authority."""
        return {"Hosp": "H", "Ins": "I"}


def build_schema() -> Schema:
    """``Hosp(S, B, D, T)`` and ``Ins(C, P)`` with realistic metadata."""
    schema = Schema()
    schema.add(Relation("Hosp", [
        AttributeSpec("S", VARCHAR, distinct_fraction=1.0),
        AttributeSpec("B", INTEGER, distinct_fraction=0.1),
        AttributeSpec("D", VARCHAR, distinct_fraction=0.05),
        AttributeSpec("T", VARCHAR, distinct_fraction=0.02),
    ], cardinality=10_000))
    schema.add(Relation("Ins", [
        AttributeSpec("C", VARCHAR, distinct_fraction=1.0),
        AttributeSpec("P", DECIMAL, distinct_fraction=0.5),
    ], cardinality=8_000))
    return schema


def build_subjects() -> tuple[Subject, ...]:
    """U (user), H and I (authorities), X, Y, Z (providers)."""
    return (
        Subject("U", SubjectKind.USER),
        Subject("H", SubjectKind.AUTHORITY),
        Subject("I", SubjectKind.AUTHORITY),
        Subject("X", SubjectKind.PROVIDER),
        Subject("Y", SubjectKind.PROVIDER),
        Subject("Z", SubjectKind.PROVIDER),
    )


def build_policy(schema: Schema) -> Policy:
    """The authorizations of Figure 1(b) / Figure 4."""
    policy = Policy(schema)
    hosp, ins = schema.relation("Hosp"), schema.relation("Ins")
    policy.grant_all([
        Authorization(hosp, "SBDT", "", "H"),
        Authorization(ins, "C", "P", "H"),
        Authorization(hosp, "B", "SDT", "I"),
        Authorization(ins, "CP", "", "I"),
        Authorization(hosp, "SDT", "", "U"),
        Authorization(ins, "CP", "", "U"),
        Authorization(hosp, "DT", "S", "X"),
        Authorization(ins, "", "CP", "X"),
        Authorization(hosp, "BDT", "S", "Y"),
        Authorization(ins, "P", "C", "Y"),
        Authorization(hosp, "ST", "D", "Z"),
        Authorization(ins, "C", "P", "Z"),
        Authorization(hosp, "DT", "", ANY),
        Authorization(ins, "", "P", ANY),
    ])
    return policy


def build_plan(schema: Schema) -> tuple[QueryPlan, dict[str, PlanNode]]:
    """The query plan of Figure 1(a), with named internal nodes."""
    hosp = BaseRelationNode(schema.relation("Hosp"), ["S", "D", "T"])
    ins = BaseRelationNode(schema.relation("Ins"))
    selection = Selection(
        hosp,
        AttributeValuePredicate("D", ComparisonOp.EQ, "stroke"),
    )
    join = Join(selection, ins, equals("S", "C"))
    group_by = GroupBy(join, ["T"], Aggregate(AggregateFunction.AVG, "P"))
    having = Selection(
        group_by,
        AttributeValuePredicate("P", ComparisonOp.GT, 100),
    )
    nodes = {
        "hosp_leaf": hosp,
        "ins_leaf": ins,
        "selection": selection,
        "join": join,
        "group_by": group_by,
        "having": having,
    }
    return QueryPlan(having), nodes


def build_running_example() -> RunningExample:
    """Assemble the complete running example."""
    schema = build_schema()
    subjects = build_subjects()
    policy = build_policy(schema)
    plan, nodes = build_plan(schema)
    return RunningExample(
        schema=schema,
        policy=policy,
        subjects=subjects,
        plan=plan,
        user=subjects[0],
        hosp_leaf=nodes["hosp_leaf"],
        ins_leaf=nodes["ins_leaf"],
        selection=nodes["selection"],
        join=nodes["join"],
        group_by=nodes["group_by"],
        having=nodes["having"],
    )


#: Expected overall views of Figure 4, for validation.
FIGURE_4_VIEWS = {
    "H": ("SBDTC", "P"),
    "I": ("BCP", "SDT"),
    "U": ("SDTCP", ""),
    "X": ("DT", "SCP"),
    "Y": ("BDTP", "SC"),
    "Z": ("STC", "DP"),
}

#: Expected candidate sets of Figure 6 (bottom-up operation order).
FIGURE_6_CANDIDATES = {
    "selection": "HIUXYZ",
    "join": "HUXYZ",
    "group_by": "HUXYZ",
    "having": "UY",
}
